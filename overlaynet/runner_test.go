package overlaynet

import (
	"context"
	"math"
	"testing"

	"smallworld/keyspace"
)

func buildTestOverlay(t testing.TB, n int) Overlay {
	t.Helper()
	ov, err := Build(context.Background(), "smallworld-uniform",
		Options{N: n, Seed: 1, Topology: keyspace.Ring})
	if err != nil {
		t.Fatal(err)
	}
	return ov
}

// TestRunnerMatchesSerialRouting: the batched parallel path must produce
// exactly the hops a serial loop over one router produces.
func TestRunnerMatchesSerialRouting(t *testing.T) {
	ov := buildTestOverlay(t, 512)
	qs := RandomPairs(ov, 2, 1000)

	router := ov.NewRouter()
	want := make([]float64, len(qs))
	for i, q := range qs {
		res := router.Route(q.Src, q.Target)
		if res.Arrived {
			want[i] = float64(res.Hops)
		} else {
			want[i] = math.NaN()
		}
	}

	for _, workers := range []int{1, 2, 7} {
		qr := NewQueryRunner(ov, Workers(workers))
		batch, err := qr.Run(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Executed != len(qs) {
			t.Fatalf("workers=%d executed %d of %d", workers, batch.Executed, len(qs))
		}
		for i := range want {
			same := batch.Hops[i] == want[i] ||
				(math.IsNaN(batch.Hops[i]) && math.IsNaN(want[i]))
			if !same {
				t.Fatalf("workers=%d query %d: got %v, want %v", workers, i, batch.Hops[i], want[i])
			}
		}
	}
}

func TestRunnerFailHopsSentinel(t *testing.T) {
	ov := buildTestOverlay(t, 256)
	qr := NewQueryRunner(ov, FailHops(256))
	batch, err := qr.Run(context.Background(), RandomPairs(ov, 3, 400))
	if err != nil {
		t.Fatal(err)
	}
	// Intact neighbour edges: everything arrives, no sentinel recorded.
	if batch.Arrived != 400 {
		t.Fatalf("arrived %d of 400", batch.Arrived)
	}
	for i, h := range batch.Hops {
		if h >= 256 || math.IsNaN(h) {
			t.Fatalf("query %d recorded sentinel %v despite arriving", i, h)
		}
	}
}

func TestRunnerReusesBuffersAcrossRuns(t *testing.T) {
	ov := buildTestOverlay(t, 256)
	qr := NewQueryRunner(ov)
	qs := RandomPairs(ov, 4, 500)
	first, err := qr.Run(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	firstHops := append([]float64(nil), first.Hops...)
	second, err := qr.Run(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range firstHops {
		if second.Hops[i] != firstHops[i] {
			t.Fatalf("rerun diverged at query %d", i)
		}
	}
	// Smaller follow-up batches must not read stale tail state.
	short, err := qr.Run(context.Background(), qs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Hops) != 10 || short.Executed != 10 {
		t.Fatalf("short batch: %d hops, %d executed", len(short.Hops), short.Executed)
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	ov := buildTestOverlay(t, 512)
	qr := NewQueryRunner(ov, Workers(1))
	qs := RandomPairs(ov, 5, 10000)
	// Warm the runner with a full batch so the cancelled rerun would
	// expose any stale scratch.
	if _, err := qr.Run(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch, err := qr.Run(ctx, qs)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if batch.Executed >= 10000 {
		t.Fatalf("cancelled run executed all %d queries", batch.Executed)
	}
	// Unexecuted entries must be zero, not the previous batch's hops.
	for i := batch.Executed; i < len(batch.Hops); i++ {
		if batch.Hops[i] != 0 {
			t.Fatalf("query %d holds stale hops %v after cancellation", i, batch.Hops[i])
		}
	}
}

// TestRunnerZeroAllocSteadyState is the acceptance bar: once warmed, a
// single-worker runner routes whole batches without a single heap
// allocation.
func TestRunnerZeroAllocSteadyState(t *testing.T) {
	ov := buildTestOverlay(t, 1024)
	qr := NewQueryRunner(ov, Workers(1))
	qs := RandomPairs(ov, 6, 256)
	ctx := context.Background()
	if _, err := qr.Run(ctx, qs); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := qr.Run(ctx, qs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f times per batch, want 0", allocs)
	}
}
