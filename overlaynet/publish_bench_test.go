package overlaynet

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/xrand"
)

// BenchmarkPublishEpoch is the paired A/B measurement behind the
// structural-sharing tentpole: the per-epoch cost of capturing a
// snapshot after 64 membership events (the default epoch boundary),
// through the chunked copy-on-write path versus the PR8-era flat copy
// of keys + byKey + order. The 64 events are applied outside the
// timer, followed by a GC checkpoint so collector assists owed to the
// churn's garbage are never paid inside the timed window; the number
// is purely the capture — O(Δ·chunk + N/chunk) chunked vs O(N) flat.
// Set SW_PUBLISH_BENCH_FULL=1 to extend the size sweep to 2^22 (the
// PERFORMANCE.md frontier run).
func BenchmarkPublishEpoch(b *testing.B) {
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	if os.Getenv("SW_PUBLISH_BENCH_FULL") != "" {
		sizes = append(sizes, 1<<22)
	}
	for _, n := range sizes {
		o := publishBenchOverlay(b, n)
		b.Run(fmt.Sprintf("chunked/n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n) + 5)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				publishBenchChurn(b, o, rng)
				runtime.GC()
				b.StartTimer()
				benchSnapSink = o.CaptureSnapshot()
			}
		})
		b.Run(fmt.Sprintf("flatcopy/n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n) + 7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				publishBenchChurn(b, o, rng)
				runtime.GC()
				b.StartTimer()
				benchFlatSink = o.captureFlat()
			}
		})
	}
}

var (
	benchSnapSink *Snapshot
	benchFlatSink flatCapture

	publishBenchMu    sync.Mutex
	publishBenchCache = map[int]*incrementalOverlay{}
)

// publishBenchOverlay builds (once per size, cached across the A/B
// pair — construction at 2^20 costs seconds and is not what is being
// measured) an incremental overlay of n nodes.
func publishBenchOverlay(b *testing.B, n int) *incrementalOverlay {
	b.Helper()
	publishBenchMu.Lock()
	defer publishBenchMu.Unlock()
	if o, ok := publishBenchCache[n]; ok {
		return o
	}
	dyn, err := NewIncremental(context.Background(), "smallworld-skewed", Options{
		N: n, Seed: 9, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		b.Fatal(err)
	}
	o := dyn.(*incrementalOverlay)
	publishBenchCache[n] = o
	return o
}

// publishBenchChurn applies exactly one epoch's worth of membership
// events (64, half joins / half leaves, population stays ~n). The
// count matches defaultCompactEvery, so the delta fold lands inside
// afterEvent and the timed capture is the pure epoch-boundary cost —
// exactly where Publisher's default cadence takes it.
func publishBenchChurn(b *testing.B, o *incrementalOverlay, rng *xrand.Stream) {
	b.Helper()
	for ev := 0; ev < defaultCompactEvery; ev++ {
		if ev%2 == 0 {
			if err := o.Join(context.Background()); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := o.Leave(context.Background(), rng.Intn(o.N())); err != nil {
				b.Fatal(err)
			}
		}
	}
}
