package overlaynet

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"unsafe"
)

// BenchmarkQueryRunner measures the batched query engine's steady state
// on the zero-allocation small-world path. With Workers(1) the runner
// routes inline, so allocs/op must read 0 (part of the acceptance bar);
// the parallel variant amortises its per-batch goroutine spawns over
// 1024 queries.
func BenchmarkQueryRunner(b *testing.B) {
	ov := buildTestOverlay(b, 4096)
	qs := RandomPairs(ov, 2, 1024)
	ctx := context.Background()

	b.Run("single-worker-batch1024", func(b *testing.B) {
		qr := NewQueryRunner(ov, Workers(1))
		if _, err := qr.Run(ctx, qs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qr.Run(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel-batch1024", func(b *testing.B) {
		qr := NewQueryRunner(ov)
		if _, err := qr.Run(ctx, qs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qr.Run(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWorkerCellPadding pins the false-sharing contract: one padded
// cell per worker, sized to cover the adjacent-line prefetch pairing,
// so consecutive workers' counters can never land on one cache line.
func TestWorkerCellPadding(t *testing.T) {
	if got := unsafe.Sizeof(workerCell{}); got != 128 {
		t.Fatalf("workerCell is %d bytes, want 128 (two cache lines)", got)
	}
}

// BenchmarkQueryRunnerScaling sweeps the worker count over a fixed
// batch — the multicore read path the E21 serving tables drive. ns/op
// is per query. With the padded per-worker counter cells (workerCell)
// the only shared mutable state left on the batch path is the
// chunk-boundary cache lines of the hops array, so throughput should
// track GOMAXPROCS up to the physical core count; on a single-core
// host the sweep records scheduling overhead instead (the maxprocs
// label makes the run's setting visible in recorded output).
func BenchmarkQueryRunnerScaling(b *testing.B) {
	ov := buildTestOverlay(b, 1<<16)
	qs := RandomPairs(ov, 11, 4096)
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w=%d/maxprocs=%d", workers, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			qr := NewQueryRunner(ov, Workers(workers))
			if _, err := qr.Run(ctx, qs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(qs) {
				if _, err := qr.Run(ctx, qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
