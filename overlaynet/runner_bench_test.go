package overlaynet

import (
	"context"
	"testing"
)

// BenchmarkQueryRunner measures the batched query engine's steady state
// on the zero-allocation small-world path. With Workers(1) the runner
// routes inline, so allocs/op must read 0 (part of the acceptance bar);
// the parallel variant amortises its per-batch goroutine spawns over
// 1024 queries.
func BenchmarkQueryRunner(b *testing.B) {
	ov := buildTestOverlay(b, 4096)
	qs := RandomPairs(ov, 2, 1024)
	ctx := context.Background()

	b.Run("single-worker-batch1024", func(b *testing.B) {
		qr := NewQueryRunner(ov, Workers(1))
		if _, err := qr.Run(ctx, qs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qr.Run(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel-batch1024", func(b *testing.B) {
		qr := NewQueryRunner(ov)
		if _, err := qr.Run(ctx, qs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qr.Run(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
