package overlaynet

import (
	"context"
	"fmt"
	"math"
	"sort"

	"smallworld"
	"smallworld/dist"
	"smallworld/graph"
	"smallworld/keyspace"
	"smallworld/xrand"
)

// NewIncremental wraps one of the offline small-world constructors
// ("smallworld-uniform", "smallworld-skewed", "kleinberg") as a Dynamic
// overlay with incremental churn repair: a Join samples one identifier
// and the newcomer's own long-range links; a Leave splices the key-order
// ring and re-draws one replacement link for each peer that pointed at
// the departed node. Every membership event therefore costs O(k) link
// draws (k = outdegree) instead of NewRebuild's full O(N·k)
// reconstruction — the local-rewiring dynamics of the adaptive
// small-world literature, applied to the paper's constructions.
//
// Link draws follow the Section 4.2 protocol rule the offline
// constructors use: an offset with density ∝ m^-r over the eligible
// measure range (geometric distance for the uniform/Kleinberg models,
// probability mass for the skew-adapted model), resolved to the nearest
// live peer. Eligibility tracks the live population (MinMeasure = 1/N
// at the current N), so the link-length distribution adapts as the
// overlay grows and shrinks.
//
// Internally node slots are stable: indices are join order, not key
// rank, so a membership event never renumbers the population (a Leave
// moves only the last slot into the hole). Routing reads a compacted
// CSR base plus a small per-row delta overlay holding the rows touched
// since the last compaction; every CompactEvery events the deltas are
// folded into a fresh CSR. Identifiers are NOT sorted by node index —
// use Keys()/Key like any other Dynamic overlay.
func NewIncremental(ctx context.Context, name string, opts Options) (Dynamic, error) {
	base, err := Build(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	sw, ok := base.(interface {
		Network() *smallworld.Network
	})
	if !ok {
		return nil, fmt.Errorf("overlaynet: topology %q is not an offline small-world constructor", name)
	}
	nw := sw.Network()
	cfg := nw.Config()
	n := nw.N()

	o := &incrementalOverlay{
		kind:     "incremental:" + name,
		topo:     cfg.Topology,
		d:        cfg.Dist,
		mass:     cfg.Measure == smallworld.Mass,
		exponent: cfg.Exponent,
		degree:   cfg.Degree,
		keys:     append([]keyspace.Key(nil), nw.Keys()...),
		long:     make([][]int32, n),
		in:       make([][]int32, n),
		succ:     make([]int32, n),
		pred:     make([]int32, n),
		byKey:    append(keyspace.Points(nil), nw.Keys()...),
		order:    make([]int32, n),
		csr:      nw.CSR(),
		delta:    make(map[int32][]int32),
		compact:  defaultCompactEvery,
		rng:      xrand.New(opts.Seed ^ incrementalSeedSalt),
	}
	for u := 0; u < n; u++ {
		o.long[u] = append([]int32(nil), nw.LongRange(u)...)
		o.order[u] = int32(u) // slots start out rank-ordered
		for _, v := range o.long[u] {
			o.in[v] = append(o.in[v], int32(u))
		}
	}
	for rank := 0; rank < n; rank++ {
		o.wireRank(rank)
	}
	o.keysM = newKeyStore(o.keys)
	o.rankM = newRankStore(o.byKey, o.order)
	return o, nil
}

const (
	// defaultCompactEvery is K, the number of membership events between
	// delta-overlay compactions. The amortised compaction cost per event
	// is O((N+M)/K); the delta map stays O(K·k) rows.
	defaultCompactEvery = 64

	// incrementalSeedSalt decorrelates the churn stream from the
	// construction stream derived from the same Options.Seed.
	incrementalSeedSalt = 0xd1b54a32d192ed03

	// maxDrawAttempts bounds re-draws per link, as in the offline
	// samplers.
	maxDrawAttempts = 64
)

// incrementalOverlay is the mutable state behind NewIncremental.
type incrementalOverlay struct {
	kind     string
	topo     keyspace.Topology
	d        dist.Distribution
	mass     bool
	exponent float64
	degree   smallworld.DegreeFunc

	// Per-slot state; slots are stable across events.
	keys []keyspace.Key
	long [][]int32 // long-range out-links
	in   [][]int32 // long-range in-links (who points here)
	succ []int32   // key-order successor (-1 at the line's top end)
	pred []int32   // key-order predecessor (-1 at the line's bottom end)

	// Rank index: byKey is the sorted identifier array, order[i] the
	// slot holding byKey[i].
	byKey keyspace.Points
	order []int32

	// Chunked copy-on-write mirrors of keys and (byKey, order), written
	// through on every mutation. CaptureSnapshot shares them into the
	// published Snapshot for O(spine) cost instead of O(N) flat copies;
	// the flat fields above remain the live read path (Keys, rankOf,
	// the drawTarget NearestExcluding probe) so every existing read
	// stays bit-identical and O(1).
	keysM *keyStore
	rankM *rankStore

	// Adjacency the routers read: compacted base + rows touched since.
	csr     *graph.CSR
	delta   map[int32][]int32
	events  int
	compact int

	rng *xrand.Stream

	// watcher, when installed, narrates membership events as typed
	// ownership transfers (see OwnershipReporter).
	watcher func(OwnershipChange)

	draws   int64 // link-draw attempts (the build-equivalent operation)
	placed  int64 // links actually installed
	repairs int64 // links replaced after a departure
}

// SetOwnershipWatcher implements OwnershipReporter. The watcher runs
// synchronously inside Join/Leave after the overlay's state reflects
// the event; it must not call back into the overlay.
func (o *incrementalOverlay) SetOwnershipWatcher(fn func(OwnershipChange)) { o.watcher = fn }

// boundaryBetween returns the ownership boundary between two adjacent
// identifiers — where their cells meet once nothing sits between them.
func (o *incrementalOverlay) boundaryBetween(a, b keyspace.Key) keyspace.Key {
	if o.topo == keyspace.Ring {
		return keyspace.MidpointRing(a, b)
	}
	return keyspace.Key((float64(a) + float64(b)) / 2)
}

// splitCell narrates node k's cell changing hands against its flanks p
// and s (slot ids, -1 when missing at a line end): the lower part of
// the cell trades with p, the upper with s, split at the p–s boundary —
// exactly the ranges a join steals from its donors and a leave bequeaths
// to its inheritors. Identifier values are captured immediately, so the
// events stay valid across the slot renames a Leave performs later.
func (o *incrementalOverlay) splitCell(joined bool, k keyspace.Key, cell keyspace.Interval, p, s int32) []OwnershipChange {
	switch {
	case p < 0 && s < 0:
		// Sole node: the whole space, with no counterparty.
		return []OwnershipChange{{Joined: joined, Node: k, Peer: k, Range: cell}}
	case p < 0:
		return []OwnershipChange{{Joined: joined, Node: k, Peer: o.keys[s], Range: cell}}
	case s < 0 || p == s:
		// Line's top end, or a 2-node ring's single flank.
		return []OwnershipChange{{Joined: joined, Node: k, Peer: o.keys[p], Range: cell}}
	}
	b := o.boundaryBetween(o.keys[p], o.keys[s])
	var out []OwnershipChange
	if lower := (keyspace.Interval{Lo: cell.Lo, Hi: b}); !lower.Empty() {
		out = append(out, OwnershipChange{Joined: joined, Node: k, Peer: o.keys[p], Range: lower})
	}
	if upper := (keyspace.Interval{Lo: b, Hi: cell.Hi}); !upper.Empty() {
		out = append(out, OwnershipChange{Joined: joined, Node: k, Peer: o.keys[s], Range: upper})
	}
	return out
}

func (o *incrementalOverlay) Kind() string           { return o.kind }
func (o *incrementalOverlay) N() int                 { return len(o.keys) }
func (o *incrementalOverlay) Key(u int) keyspace.Key { return o.keys[u] }
func (o *incrementalOverlay) Keys() []keyspace.Key   { return o.keys }
func (o *incrementalOverlay) Stats() Stats           { return statsOf(o) }

// Neighbors returns u's current out-row: the delta row when u was
// touched since the last compaction, the base CSR row otherwise.
func (o *incrementalOverlay) Neighbors(u int) []int32 {
	if row, ok := o.delta[int32(u)]; ok {
		return row
	}
	return o.csr.Out(u)
}

// Ops reports the cumulative churn-repair work in build-equivalent
// operations: link-draw attempts, links placed, and departure repairs.
// A full rebuild costs ≥ N·k placed links per event; these counters are
// what the ≥50×-fewer-operations benchmark reads.
func (o *incrementalOverlay) Ops() (draws, placed, repairs int64) {
	return o.draws, o.placed, o.repairs
}

// rankOf returns node u's position in key order (exact: identifiers are
// unique by construction).
func (o *incrementalOverlay) rankOf(u int) int {
	k := o.keys[u]
	i := sort.Search(len(o.byKey), func(i int) bool { return o.byKey[i] >= k })
	for o.order[i] != int32(u) {
		i++ // defensive: cannot happen with unique keys
	}
	return i
}

// wireRank points the node at the given rank at its key-order
// neighbours (cyclic on the ring, -1 sentinels at the line's ends).
func (o *incrementalOverlay) wireRank(rank int) {
	n := len(o.order)
	id := o.order[rank]
	if o.topo == keyspace.Ring {
		o.pred[id] = o.order[(rank-1+n)%n]
		o.succ[id] = o.order[(rank+1)%n]
		if o.pred[id] == id {
			o.pred[id], o.succ[id] = -1, -1 // single node
		}
		return
	}
	if rank > 0 {
		o.pred[id] = o.order[rank-1]
	} else {
		o.pred[id] = -1
	}
	if rank+1 < n {
		o.succ[id] = o.order[rank+1]
	} else {
		o.succ[id] = -1
	}
}

// markDirty rebuilds node u's delta row from its current neighbour and
// long-range links (sorted, deduplicated — a repair can transiently
// make a long link coincide with a neighbouring edge).
func (o *incrementalOverlay) markDirty(u int32) {
	if u < 0 {
		return
	}
	row := o.delta[u]
	row = row[:0]
	if o.pred[u] >= 0 {
		row = append(row, o.pred[u])
	}
	if o.succ[u] >= 0 {
		row = append(row, o.succ[u])
	}
	row = append(row, o.long[u]...)
	sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	w := 0
	for i, v := range row {
		if i == 0 || v != row[w-1] {
			row[w] = v
			w++
		}
	}
	o.delta[u] = row[:w]
}

// afterEvent folds the delta overlay into a fresh base CSR every
// compact events.
func (o *incrementalOverlay) afterEvent() {
	o.events++
	if o.events%o.compact == 0 {
		o.compactNow()
	}
}

// compactNow folds the delta rows into a fresh base CSR and clears the
// delta overlay. The previous CSR is never mutated — snapshots holding
// it stay valid.
func (o *incrementalOverlay) compactNow() {
	n := len(o.keys)
	offsets := make([]int32, n+1)
	size := 0
	for u := 0; u < n; u++ {
		size += len(o.Neighbors(u))
	}
	targets := make([]int32, 0, size)
	for u := 0; u < n; u++ {
		targets = append(targets, o.Neighbors(u)...)
		offsets[u+1] = int32(len(targets))
	}
	o.csr = graph.NewCSR(offsets, targets)
	clear(o.delta)
}

// Topology returns the key-space geometry the overlay routes under.
func (o *incrementalOverlay) Topology() keyspace.Topology { return o.topo }

// CaptureSnapshot implements Snapshotter: fold any pending delta rows
// into the base CSR, then share that CSR with the snapshot (it is
// immutable; future compactions replace the pointer rather than the
// array). The identifier array and the rank index are shared
// structurally through the chunked COW mirrors — the capture copies
// only the chunk spines, O(Δ·chunk + N/chunk) amortised per epoch
// instead of the former O(N) flat copies, which is what keeps
// publish cost flat as N grows (see BenchmarkPublishEpoch).
func (o *incrementalOverlay) CaptureSnapshot() *Snapshot {
	if len(o.delta) > 0 {
		o.compactNow()
	}
	return &Snapshot{
		kind: o.kind,
		topo: o.topo,
		keys: o.keysM.capture(),
		csr:  o.csr,
		rank: o.rankM.capture(),
	}
}

// flatCapture is the PR8-era O(N) per-epoch copy, retained as the
// paired A/B baseline: BenchmarkPublishEpoch measures it against the
// structural-sharing capture, and the epoch-sequence test uses it as
// the bit-identical flat reference for every published epoch.
type flatCapture struct {
	keys  []keyspace.Key
	byKey keyspace.Points
	order []int32
}

func (o *incrementalOverlay) captureFlat() flatCapture {
	return flatCapture{
		keys:  append([]keyspace.Key(nil), o.keys...),
		byKey: append(keyspace.Points(nil), o.byKey...),
		order: append([]int32(nil), o.order...),
	}
}

// Join implements Dynamic: draw one identifier, splice the newcomer
// into key order, and sample only its own long-range links.
func (o *incrementalOverlay) Join(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	k, err := o.drawKey()
	if err != nil {
		return err
	}
	id := int32(len(o.keys))
	o.keys = append(o.keys, k)
	o.keysM.push(k)
	o.long = append(o.long, nil)
	o.in = append(o.in, nil)
	o.succ = append(o.succ, -1)
	o.pred = append(o.pred, -1)

	rank := sort.Search(len(o.byKey), func(i int) bool { return o.byKey[i] >= k })
	o.byKey = append(o.byKey, 0)
	copy(o.byKey[rank+1:], o.byKey[rank:])
	o.byKey[rank] = k
	o.order = append(o.order, 0)
	copy(o.order[rank+1:], o.order[rank:])
	o.order[rank] = id
	o.rankM.insert(rank, k, id)

	n := len(o.order)
	o.wireRank((rank - 1 + n) % n)
	o.wireRank(rank)
	o.wireRank((rank + 1) % n)
	o.markDirty(o.pred[id])
	o.markDirty(o.succ[id])

	m := o.degree(n)
	o.handover(id)
	o.sampleInto(id, m)
	o.markDirty(id)
	o.afterEvent()
	if o.watcher != nil {
		// The newcomer's cell was stolen from its flanks, split at their
		// former mutual boundary.
		cell := keyspace.Cell(o.topo, o.byKey, rank)
		for _, ch := range o.splitCell(true, k, cell, o.pred[id], o.succ[id]) {
			o.watcher(ch)
		}
	}
	return nil
}

// handover re-points a share of the rank-neighbours' long-range
// in-links at the newcomer — the join-time transfer of in-pointers
// every deployed DHT performs when a newcomer takes over part of its
// neighbours' key range. Links resolve to the peer nearest their drawn
// key; the newcomer now owns a slice of each flank's resolution range,
// so each in-link of a flank re-points with probability equal to the
// stolen share of that range. This is what keeps the newcomer's
// in-degree (and hence hop quantiles) tracking the full-rebuild
// baseline instead of decaying under sustained churn.
func (o *incrementalOverlay) handover(w int32) {
	p, s := o.pred[w], o.succ[w]
	for side := 0; side < 2; side++ {
		v := p
		if side == 1 {
			v = s
		}
		if v < 0 || v == w || (side == 1 && s == p) {
			continue // missing flank, or a 2-node ring's single flank
		}
		frac := o.stolenFrac(v, w)
		if frac <= 0 {
			continue
		}
		// Iterate a snapshot: redirecting mutates the in-list.
		ins := append([]int32(nil), o.in[v]...)
		for _, u := range ins {
			if !o.rng.Bool(frac) {
				continue
			}
			if u == w || o.pred[u] == w || o.succ[u] == w || hasTarget(o.long[u], w) {
				continue
			}
			o.dropTarget(u, v)
			o.dropIn(v, u)
			o.long[u] = append(o.long[u], w)
			o.in[w] = append(o.in[w], u)
			o.markDirty(u)
		}
	}
}

// stolenFrac returns the fraction of flank v's key-resolution range
// that newcomer w took over: half the arc between w and v's far
// boundary, normalised by v's previous range (flanking midpoints, or
// the interval edge at the line's ends).
func (o *incrementalOverlay) stolenFrac(v, w int32) float64 {
	// gap is the directed key-space arc from a up to its rank-successor
	// b — NOT the min-arc Topology.Distance, which would take the
	// complement of any neighbour gap longer than half the ring
	// (sparse or heavily skewed populations have such gaps).
	gap := func(a, b int32) float64 {
		d := float64(o.keys[b]) - float64(o.keys[a])
		if o.topo == keyspace.Ring {
			return float64(keyspace.Wrap(d))
		}
		return math.Abs(d)
	}
	var num, den float64
	if v == o.pred[w] { // w sits above v: v loses its upper slice
		if s := o.succ[w]; s >= 0 && s != v { // v's previous upper flank
			num = gap(w, s)
			den = gap(v, s)
		} else { // v was the line's top: its range ran to the edge
			num = 2 - float64(o.keys[v]) - float64(o.keys[w])
			den = 2 * (1 - float64(o.keys[v]))
		}
		if p := o.pred[v]; p >= 0 && p != v {
			den += gap(p, v)
		} else {
			den += 2 * float64(o.keys[v])
		}
	} else { // w sits below v: v loses its lower slice
		if p := o.pred[w]; p >= 0 && p != v { // v's previous lower flank
			num = gap(p, w)
			den = gap(p, v)
		} else { // v was the line's bottom: its range ran to the edge
			num = float64(o.keys[v]) + float64(o.keys[w])
			den = 2 * float64(o.keys[v])
		}
		if s := o.succ[v]; s >= 0 && s != v {
			den += gap(v, s)
		} else {
			den += 2 * (1 - float64(o.keys[v]))
		}
	}
	if den <= 0 {
		return 0
	}
	f := num / den
	if f > 1 {
		f = 1
	}
	return f
}

// Leave implements Dynamic: splice u out of key order, move the last
// slot into the hole, and re-draw one replacement link for each peer
// that pointed at the departed node.
func (o *incrementalOverlay) Leave(ctx context.Context, u int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(o.keys)
	if u < 0 || u >= n {
		return fmt.Errorf("overlaynet: leave of unknown node %d", u)
	}
	if n <= 2 {
		return fmt.Errorf("overlaynet: leave at %d nodes, need at least 2 remaining", n)
	}
	uid := int32(u)

	// Narrate the leaver's cell being bequeathed to its flanks before any
	// state is torn down (identifier values are captured immediately; the
	// watcher itself runs after the event completes).
	var changes []OwnershipChange
	if o.watcher != nil {
		cell := keyspace.Cell(o.topo, o.byKey, o.rankOf(u))
		changes = o.splitCell(false, o.keys[uid], cell, o.pred[uid], o.succ[uid])
	}

	// The departing node's own links stop existing.
	for _, t := range o.long[uid] {
		o.dropIn(t, uid)
	}
	// Peers holding a link to the departed node lose it now and get a
	// replacement drawn after the membership change is complete.
	repair := append([]int32(nil), o.in[uid]...)
	for _, w := range repair {
		o.dropTarget(w, uid)
		o.markDirty(w)
	}
	o.long[uid], o.in[uid] = nil, nil

	// Splice u out of the rank index; its former flanks become
	// key-order neighbours of each other.
	rank := o.rankOf(u)
	copy(o.byKey[rank:], o.byKey[rank+1:])
	o.byKey = o.byKey[:n-1]
	copy(o.order[rank:], o.order[rank+1:])
	o.order = o.order[:n-1]
	o.rankM.remove(rank)
	nn := n - 1
	o.wireRank((rank - 1 + nn) % nn)
	o.wireRank(rank % nn)
	o.markDirty(o.order[(rank-1+nn)%nn])
	o.markDirty(o.order[rank%nn])

	// Move the last slot into the hole so slots stay dense. Everything
	// that mentions the old id — rank index, neighbour pointers of its
	// flanks, rows of its in-neighbours, in-lists of its targets — is
	// renamed, and every renamed row is dirtied.
	last := int32(n - 1)
	if uid != last {
		o.keys[uid] = o.keys[last]
		o.keysM.set(int(uid), o.keys[last])
		o.long[uid] = o.long[last]
		o.in[uid] = o.in[last]
		o.succ[uid] = o.succ[last]
		o.pred[uid] = o.pred[last]
		lastRank := o.rankOf(int(last))
		o.order[lastRank] = uid
		o.rankM.setSlot(lastRank, uid)
		if p := o.pred[uid]; p >= 0 {
			o.succ[p] = uid
			o.markDirty(p)
		}
		if s := o.succ[uid]; s >= 0 {
			o.pred[s] = uid
			o.markDirty(s)
		}
		for _, t := range o.long[uid] {
			o.renameIn(t, last, uid)
		}
		for _, w := range o.in[uid] {
			o.renameTarget(w, last, uid)
			o.markDirty(w)
		}
		for i, w := range repair {
			if w == last {
				repair[i] = uid
			}
		}
		o.markDirty(uid)
	}
	o.keys = o.keys[:n-1]
	o.keysM.pop()
	o.long = o.long[:n-1]
	o.in = o.in[:n-1]
	o.succ = o.succ[:n-1]
	o.pred = o.pred[:n-1]
	delete(o.delta, last)

	// Repair: one replacement draw per broken link.
	for _, w := range repair {
		if o.sampleInto(w, len(o.long[w])+1) > 0 {
			o.repairs++
		}
		o.markDirty(w)
	}
	o.afterEvent()
	if o.watcher != nil {
		for _, ch := range changes {
			o.watcher(ch)
		}
	}
	return nil
}

// dropIn removes w from t's in-list.
func (o *incrementalOverlay) dropIn(t, w int32) {
	in := o.in[t]
	for i, x := range in {
		if x == w {
			in[i] = in[len(in)-1]
			o.in[t] = in[:len(in)-1]
			return
		}
	}
}

// renameIn rewrites from→to in t's in-list.
func (o *incrementalOverlay) renameIn(t, from, to int32) {
	for i, x := range o.in[t] {
		if x == from {
			o.in[t][i] = to
			return
		}
	}
}

// dropTarget removes t from w's long links.
func (o *incrementalOverlay) dropTarget(w, t int32) {
	long := o.long[w]
	for i, x := range long {
		if x == t {
			long[i] = long[len(long)-1]
			o.long[w] = long[:len(long)-1]
			return
		}
	}
}

// renameTarget rewrites from→to in w's long links.
func (o *incrementalOverlay) renameTarget(w, from, to int32) {
	for i, x := range o.long[w] {
		if x == from {
			o.long[w][i] = to
			return
		}
	}
}

// drawKey samples a fresh identifier from the density, nudging float
// collisions apart exactly like the offline key placement.
func (o *incrementalOverlay) drawKey() (keyspace.Key, error) {
	for attempt := 0; attempt < maxDrawAttempts; attempt++ {
		k := keyspace.Clamp(o.d.Quantile(o.rng.Float64()))
		for taken(o.byKey, k) {
			next := keyspace.Key(math.Nextafter(float64(k), 1))
			if next >= 1 {
				k = 0 // fell off the top: restart the probe from 0
				continue
			}
			k = next
		}
		if k.Valid() && !taken(o.byKey, k) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("overlaynet: could not draw a fresh identifier")
}

// taken reports whether k is already an identifier.
func taken(p keyspace.Points, k keyspace.Key) bool {
	i := sort.Search(len(p), func(i int) bool { return p[i] >= k })
	return i < len(p) && p[i] == k
}

// sampleInto draws long-range links for node u until it holds m of them
// (or the attempt budget runs out), excluding itself, its key-order
// neighbours and its existing links. It returns how many links were
// placed and keeps the in-lists consistent. The node's measure position
// and rank are fixed for the whole call (membership cannot change
// mid-event), so they are computed once, not per attempt.
func (o *incrementalOverlay) sampleInto(u int32, m int) int {
	pos := float64(o.keys[u])
	if o.mass {
		pos = o.d.CDF(pos)
	}
	rank := o.rankOf(int(u))
	placed := 0
	for len(o.long[u]) < m {
		ok := false
		for attempt := 0; attempt < maxDrawAttempts; attempt++ {
			o.draws++
			v := o.drawTarget(pos, rank)
			if v < 0 || v == int(u) || int32(v) == o.pred[u] || int32(v) == o.succ[u] {
				continue
			}
			if hasTarget(o.long[u], int32(v)) {
				continue
			}
			o.long[u] = append(o.long[u], int32(v))
			o.in[v] = append(o.in[v], u)
			o.placed++
			placed++
			ok = true
			break
		}
		if !ok {
			break
		}
	}
	return placed
}

func hasTarget(long []int32, v int32) bool {
	for _, x := range long {
		if x == v {
			return true
		}
	}
	return false
}

// drawTarget performs one Section 4.2 link draw for the node at the
// given measure position and rank, at the current population: a
// measure-space offset with density ∝ m^-r over the eligible range
// [1/N, maxM] (smallworld.DrawMeasureTarget — the identical draw the
// offline Protocol sampler uses), mapped back to a key and resolved to
// the nearest other peer. It returns the chosen slot, or -1 when no
// eligible offset exists.
func (o *incrementalOverlay) drawTarget(pos float64, rank int) int {
	lo := 1 / float64(len(o.keys))
	target, ok := smallworld.DrawMeasureTarget(o.rng, o.topo, pos, o.exponent, lo)
	if !ok {
		return -1
	}
	var key keyspace.Key
	if o.mass {
		if target < 0 {
			target = 0
		}
		if target > 1 {
			target = 1
		}
		key = keyspace.Clamp(o.d.Quantile(target))
	} else {
		key = keyspace.Clamp(target)
	}
	nearest := o.byKey.NearestExcluding(o.topo, key, rank)
	if nearest < 0 {
		return -1
	}
	return int(o.order[nearest])
}

// NewRouter returns greedy routing scratch over the live adjacency
// (base CSR + delta rows).
func (o *incrementalOverlay) NewRouter() Router {
	return &incrementalRouter{o: o}
}

type incrementalRouter struct {
	o *incrementalOverlay
}

// Route routes greedily by key distance, exactly like the static
// small-world router: forward to the out-neighbour closest to the
// target (arc-advance tie-break), stop when no neighbour improves.
func (r *incrementalRouter) Route(src int, target keyspace.Key) Result {
	o := r.o
	topo := o.topo
	cur := src
	dCur := topo.Distance(o.keys[cur], target)
	guard := 2 * len(o.keys)
	hops := 0
	for ; hops < guard; hops++ {
		best, bestD := -1, dCur
		bestKey := o.keys[cur]
		for _, v := range o.Neighbors(cur) {
			vKey := o.keys[v]
			d := topo.Distance(vKey, target)
			if d < bestD || (d == bestD && topo.Advances(bestKey, vKey, target)) {
				best, bestD, bestKey = int(v), d, vKey
			}
		}
		if best == -1 {
			break
		}
		cur, dCur = best, bestD
	}
	arrived := false
	if nearest := o.byKey.Nearest(topo, target); nearest >= 0 {
		arrived = dCur <= topo.Distance(o.byKey[nearest], target)
	}
	return Result{Hops: hops, Dest: cur, Arrived: arrived}
}
