package overlaynet

import (
	"context"
	"fmt"

	"smallworld/keyspace"
)

// Messenger is implemented by overlays that meter their own protocol
// traffic in overlay hops (the paper's message unit). The dynamics
// simulator uses the maintenance counter to report repair cost per
// membership event.
type Messenger interface {
	Overlay
	// Messages returns cumulative hop counts: total traffic of any kind,
	// and the maintenance share (join routing, link draws, repairs,
	// refinement walks — everything except plain lookups).
	Messages() (total, maintenance int64)
}

// Maintainer is implemented by dynamic overlays with an explicit
// maintenance round — the Section 4.2 protocol's iterative refinement,
// where peers re-estimate the identifier density and re-draw their
// long-range links. Simulated maintenance schedules call Maintain
// between membership events.
type Maintainer interface {
	Overlay
	// Maintain runs one maintenance round. Node indices remain valid,
	// but neighbour sets and routers may change.
	Maintain(ctx context.Context) error
}

// NewRebuild wraps the named registered topology as a Dynamic overlay
// with oracle maintenance: every Join or Leave rebuilds the whole
// overlay at the new population (fresh identifiers, fresh links, seed
// advanced deterministically per generation). It is the idealised
// upper baseline for churn experiments — routing tables are always
// perfectly adapted to the current population, at a rebuild cost no
// deployed system would pay — and it makes every topology in the
// registry drivable by the sim package.
//
// Because each membership change resamples all identifiers, a rebuild
// overlay models routing quality at the current population, not
// continuity of individual nodes across events. For the offline
// small-world constructors, NewIncremental provides the realistic
// counterpart: O(k) local repair per event at matching hop quantiles.
func NewRebuild(ctx context.Context, name string, opts Options) (Dynamic, error) {
	base, err := Build(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	return NewRebuildFrom(base, name, opts)
}

// NewRebuildFrom is NewRebuild with an already-built first generation:
// callers that had to construct the overlay anyway (the CLI probes for
// Dynamic support) avoid paying the full O(N·k) build a second time.
// base must come from Build with the same (name, opts), or the rebuilt
// generations will not continue its trajectory.
func NewRebuildFrom(base Overlay, name string, opts Options) (Dynamic, error) {
	if base == nil {
		return nil, fmt.Errorf("overlaynet: nil base overlay")
	}
	return &rebuildOverlay{name: name, opts: opts, cur: base}, nil
}

// rebuildOverlay delegates the static Overlay surface to the current
// generation and rebuilds it on every membership change.
type rebuildOverlay struct {
	name string
	opts Options
	gen  uint64
	cur  Overlay
}

func (o *rebuildOverlay) Kind() string { return "rebuild:" + o.name }

// Topology forwards the current generation's key-space geometry, when
// it exposes one (the small-world family does; ring-native DHTs don't
// need to).
func (o *rebuildOverlay) Topology() keyspace.Topology {
	if th, ok := o.cur.(topologyHaver); ok {
		return th.Topology()
	}
	return keyspace.Ring
}
func (o *rebuildOverlay) N() int                  { return o.cur.N() }
func (o *rebuildOverlay) Key(u int) keyspace.Key  { return o.cur.Key(u) }
func (o *rebuildOverlay) Keys() []keyspace.Key    { return o.cur.Keys() }
func (o *rebuildOverlay) Neighbors(u int) []int32 { return o.cur.Neighbors(u) }
func (o *rebuildOverlay) NewRouter() Router       { return o.cur.NewRouter() }
func (o *rebuildOverlay) Stats() Stats            { return o.cur.Stats() }

// CaptureSnapshot implements Snapshotter: the current generation is
// never mutated after construction (membership changes replace it
// wholesale), so the snapshot retains it and routes through the
// overlay's own semantics — Chord's clockwise fingers or Pastry's
// digit correction would strand most queries under the generic
// distance-greedy CSR router.
func (o *rebuildOverlay) CaptureSnapshot() *Snapshot {
	var s *Snapshot
	if snapper, ok := o.cur.(Snapshotter); ok {
		s = snapper.CaptureSnapshot()
	} else {
		s = NewSnapshot(o.cur)
		s.src = o.cur
	}
	s.kind = o.Kind()
	return s
}

// Join implements Dynamic by rebuilding at population N+1.
func (o *rebuildOverlay) Join(ctx context.Context) error {
	return o.resize(ctx, o.cur.N()+1)
}

// Leave implements Dynamic by rebuilding at population N-1. The index u
// only needs to be valid; the departing identity is not preserved
// across the rebuild (see NewRebuild).
func (o *rebuildOverlay) Leave(ctx context.Context, u int) error {
	if u < 0 || u >= o.cur.N() {
		return fmt.Errorf("overlaynet: leave of unknown node %d", u)
	}
	return o.resize(ctx, o.cur.N()-1)
}

func (o *rebuildOverlay) resize(ctx context.Context, n int) error {
	if n < 2 {
		return fmt.Errorf("overlaynet: rebuild to %d nodes, need at least 2", n)
	}
	opts := o.opts
	opts.N = n
	// Advance the seed per generation so successive rebuilds draw fresh
	// identifiers while the whole trajectory stays a pure function of
	// the starting options.
	o.gen++
	opts.Seed = o.opts.Seed + o.gen
	next, err := Build(ctx, o.name, opts)
	if err != nil {
		o.gen--
		return err
	}
	o.cur = next
	return nil
}
