package overlaynet

import (
	"sync/atomic"

	"smallworld/obs"
)

// This file wires the observability plane into the serving path.
// Instrumentation is carried BY snapshots, not by routers: a Publisher
// given a registry/tracer via SetObs attaches an obsHooks to every
// snapshot it publishes, and any router pinned to that snapshot —
// SnapshotRouter, publishedRouter, RobustRouter — picks the hooks up on
// rebind. Snapshots captured directly through NewSnapshot carry no
// hooks, so ad-hoc captures (sim's store snapshots, tests) stay
// uninstrumented and bit-identical by construction.

// obsHooks is the instrumentation a snapshot carries: the registry to
// count into, the tracer to sample against, and — when the registry
// asks for it — one traffic accumulator per CSR edge.
type obsHooks struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	// links[csr.RowStart(u)+j] counts queries forwarded over edge j of
	// u's out-row. Allocated per publication (each epoch has its own
	// CSR), updated with one atomic add per routed hop.
	links []uint64
}

// SetObs installs a metrics registry and an optional tracer on the
// publisher and republishes, so the current snapshot is already
// instrumented. Every subsequent publication carries the hooks; pass
// (nil, nil) to strip them at the next epoch. With reg.TrackLinks set,
// each published snapshot additionally carries a per-edge traffic
// accumulator readable through Snapshot.LinkTraffic.
func (p *Publisher) SetObs(reg *obs.Registry, tracer *obs.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsReg, p.obsTracer = reg, tracer
	p.obsHint = reg.NextHint()
	p.publishLocked()
}

// attachObsLocked hangs the publisher's hooks on a freshly captured
// snapshot and refreshes the serving-plane gauges. Callers hold p.mu.
func (p *Publisher) attachObsLocked(s *Snapshot) {
	reg := p.obsReg
	if reg == nil && p.obsTracer == nil {
		return
	}
	h := &obsHooks{reg: reg, tracer: p.obsTracer}
	if reg != nil && reg.TrackLinks && s.csr != nil {
		h.links = make([]uint64, s.csr.M())
	}
	s.obs = h
	if reg != nil {
		reg.PublishEpochs.Inc(p.obsHint)
		reg.SnapEpoch.Set(int64(s.epoch))
		reg.SnapNodes.Set(int64(s.N()))
		reg.SnapDead.Set(int64(s.DeadCount()))
	}
}

// LinkTraffic returns a copy of the snapshot's per-edge traffic
// counters — entry CSR().RowStart(u)+j counts queries routed over edge
// j of u's out-row since this epoch was published — or nil when the
// snapshot does not track links (no registry, or TrackLinks unset).
// This is the observed-load input the adaptive-overlay rewiring work
// consumes.
func (s *Snapshot) LinkTraffic() []uint64 {
	if s.obs == nil || s.obs.links == nil {
		return nil
	}
	out := make([]uint64, len(s.obs.links))
	for i := range out {
		out[i] = atomic.LoadUint64(&s.obs.links[i])
	}
	return out
}

// obsOutcome maps an Outcome to its label index in
// obs.Registry.RouteOutcomes; the identity today, pinned by
// TestOutcomeLabelOrder against the exposition labels.
func obsOutcome(o Outcome) int { return int(o) }
