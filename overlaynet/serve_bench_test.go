package overlaynet_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/obs"
	"smallworld/overlaynet"
	"smallworld/xrand"
)

// BenchmarkServeUnderChurn measures the tentpole's read path: queries
// routed lock-free against Publisher snapshots, with and without
// concurrent writer-side churn. ns/op is per query. The churn=off rows
// are the steady-state allocation contract — 0 allocs/op — because the
// pinned SnapshotRouter holds no per-route scratch and re-pinning is a
// pointer assignment; churn=on rows additionally carry the writer's
// repair allocations amortised over the queries routed meanwhile
// (ReportAllocs counts process-wide).
//
// Worker goroutines are started before the timer and released through a
// gate, so the measured region contains only routing. On a single-core
// host the worker sweep records scheduling behaviour rather than
// speedup; the scaling shape needs GOMAXPROCS >= workers.
func BenchmarkServeUnderChurn(b *testing.B) {
	const churnInterval = 200 * time.Microsecond // ~5000 events/s when on
	type config struct {
		n, workers int
		churn      bool
	}
	configs := []config{
		{1 << 12, 1, false},
		{1 << 12, 4, false},
		{1 << 12, 1, true},
		{1 << 12, 4, true},
		{1 << 16, 4, false},
		{1 << 16, 4, true},
		{1 << 20, 4, true},
	}
	for _, cfg := range configs {
		churn := "off"
		if cfg.churn {
			churn = "on"
		}
		b.Run(fmt.Sprintf("N=%d/w=%d/churn=%s", cfg.n, cfg.workers, churn), func(b *testing.B) {
			benchServe(b, cfg.n, cfg.workers, cfg.churn, churnInterval)
		})
	}
}

// BenchmarkServeUnderChurnObs is the serve-while-churning configuration
// (N=4096, 4 workers, churn on) under the observability plane: the
// publisher carries a registry (and, in the tracing mode, a 1-in-128
// sampled tracer), so every snapshot the workers pin counts queries,
// hops and link traffic. Acceptance: within 5% of the uninstrumented
// row and still 0 allocs/query beyond the writer's repair allocations.
func BenchmarkServeUnderChurnObs(b *testing.B) {
	const churnInterval = 200 * time.Microsecond
	for _, mode := range []string{"off", "counters", "tracing"} {
		b.Run(mode, func(b *testing.B) {
			var reg *obs.Registry
			var tracer *obs.Tracer
			switch mode {
			case "counters":
				reg = obs.NewRegistry()
			case "tracing":
				reg = obs.NewRegistry()
				tracer = obs.NewTracer(obs.TracerConfig{})
			}
			benchServeWith(b, 1<<12, 4, true, churnInterval, reg, tracer)
		})
	}
}

func benchServe(b *testing.B, n, workers int, churn bool, churnInterval time.Duration) {
	benchServeWith(b, n, workers, churn, churnInterval, nil, nil)
}

func benchServeWith(b *testing.B, n, workers int, churn bool, churnInterval time.Duration, reg *obs.Registry, tracer *obs.Tracer) {
	ctx := context.Background()
	dyn, err := overlaynet.NewIncremental(ctx, "smallworld-skewed", overlaynet.Options{
		N: n, Seed: 9, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A tight publish boundary keeps epochs turning over even when a
	// single-core scheduler starves the churn goroutine.
	pub, err := overlaynet.NewPublisher(dyn, overlaynet.PublishEvery(16))
	if err != nil {
		b.Fatal(err)
	}
	if reg != nil || tracer != nil {
		pub.SetObs(reg, tracer)
	}

	var stop atomic.Bool
	var events atomic.Int64
	var churnWG sync.WaitGroup
	if churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			rng := xrand.New(3)
			for !stop.Load() {
				var err error
				if rng.Bool(0.5) {
					err = pub.Join(ctx)
				} else if live := pub.LiveN(); live > 8 {
					err = pub.Leave(ctx, rng.Intn(live))
				}
				if err != nil {
					b.Error(err)
					return
				}
				events.Add(1)
				time.Sleep(churnInterval)
			}
		}()
	}

	// Workers are created and parked on the gate before the timer
	// starts; the timed region contains only query routing.
	var wg sync.WaitGroup
	gate := make(chan struct{})
	chunk := (b.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, b.N)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(count int, seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			snap := pub.Snapshot()
			router := snap.NewRouter().(*overlaynet.SnapshotRouter)
			<-gate
			for i := 0; i < count; i++ {
				if i%512 == 0 {
					router.Rebind(pub.Snapshot())
				}
				src := rng.Intn(router.Pinned().N())
				router.Route(src, keyspace.Key(rng.Float64()))
			}
		}(hi-lo, uint64(w)+17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	close(gate)
	wg.Wait()
	b.StopTimer()
	stop.Store(true)
	churnWG.Wait()
	if churn {
		b.ReportMetric(float64(pub.Epoch()), "epochs")
		b.ReportMetric(float64(events.Load()), "events")
	}
}
