package overlaynet

import (
	"fmt"
	"sync/atomic"

	"smallworld/keyspace"
	"smallworld/netmodel"
	"smallworld/obs"
	"smallworld/xrand"
)

// This file is the robust routing layer: greedy routing re-run as a
// message exchange over a faulty network. Where SnapshotRouter assumes
// every forward succeeds instantly, a RobustRouter sends each hop
// through a Transport that may lose the message, return nothing (dead
// or partitioned endpoint), or delay it — and answers with per-hop
// timeout, bounded retry under exponential backoff with jitter, and
// fallback to the next-best neighbour. It generalises the legacy
// Network's RouteGreedyAvoiding/RouteBacktracking to the serving path:
// instead of an omniscient FailSet consulted for free, failure is
// something the router discovers by paying timeouts for it.

// Transport is the message plane robust routing sends hops through.
// netmodel.Model implements it; tests substitute scripted planes.
// A Transport is not assumed safe for concurrent use — hold one per
// routing goroutine, or serialise.
type Transport interface {
	// Send attempts one message between the nodes holding the two
	// identifiers and reports its fate.
	Send(from, to keyspace.Key) netmodel.Delivery
	// Misroute reports whether the node holding the identifier hijacks
	// a query arriving at it (byzantine forwarding).
	Misroute(at keyspace.Key) bool
}

// deadOracle is optionally implemented by Transports that know the
// true crashed set (netmodel.Model does). Robust routing uses it only
// to *classify* a finished query — whether the stop node is the
// closest live node — never to pick candidates; the router learns
// about dead peers the expensive way, by timing out on them, unless a
// published snapshot mask says otherwise.
type deadOracle interface {
	Dead(k keyspace.Key) bool
}

// Outcome is the typed fate of a robustly routed query.
type Outcome uint8

const (
	// Delivered: the query reached the responsible node cleanly — no
	// retries, no fallbacks, no byzantine detours.
	Delivered Outcome = iota
	// DeliveredDegraded: the query reached a correct destination (the
	// closest live node) but needed retries, a next-best fallback, a
	// byzantine detour, or the responsible node itself was dead.
	DeliveredDegraded
	// TimedOut: some hop exhausted its retry budget on lost messages
	// (or the query exceeded its end-to-end budget); the initiator
	// gives up without an answer.
	TimedOut
	// Unroutable: routing stopped at a live node with no live improving
	// neighbour short of the target region — the overlay is partitioned
	// (or every better peer is unreachable), and no amount of retrying
	// the same links can help.
	Unroutable
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case DeliveredDegraded:
		return "degraded"
	case TimedOut:
		return "timeout"
	case Unroutable:
		return "unroutable"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Arrived reports whether the query reached a correct destination
// (possibly degraded).
func (o Outcome) Arrived() bool { return o == Delivered || o == DeliveredDegraded }

// RobustResult records one robustly routed query.
type RobustResult struct {
	// Outcome is the typed fate of the query.
	Outcome Outcome
	// Hops counts messages actually delivered (retries excluded).
	Hops int
	// Retries counts resends beyond each first attempt.
	Retries int
	// Latency is the end-to-end virtual time consumed: link latencies
	// of delivered messages plus hop timeouts and backoff waits of
	// failed ones.
	Latency float64
	// Dest is the node where routing stopped, -1 when it never started.
	Dest int
}

// RobustPolicy is the timeout/retry/backoff discipline of robust
// routing. The zero value of every field means its documented default,
// so RobustPolicy{} is the standard policy; negative values mean
// "none" where 0 selects a default.
type RobustPolicy struct {
	// HopTimeout is how long a sender waits for the ack of one send
	// before declaring it failed. Default 0.05 virtual-time units
	// (≫ the default netmodel link latency of ~0.003).
	HopTimeout float64
	// Retries is the per-candidate resend budget after the first
	// attempt. Default 2; negative means no retries (the "retry budget
	// 0" setting).
	Retries int
	// Backoff is the wait before the first resend, doubling on each
	// further resend. Default HopTimeout/2.
	Backoff float64
	// Jitter randomises each backoff wait by ±Jitter·wait. Default
	// 0.25; negative means none.
	Jitter float64
	// QueryTimeout is the end-to-end budget after which the initiator
	// gives up. Default 0: no end-to-end deadline (the per-hop budgets
	// already bound every query).
	QueryTimeout float64
	// MaxHops caps delivered messages per query, bounding byzantine
	// routing loops. Default 4·N.
	MaxHops int
}

// Resolved returns the policy with every zero-valued field replaced by
// its documented default (MaxHops stays as given; it is resolved
// against the population per query). Exposed so other executors of the
// policy — package sim's message flights — resolve it identically.
func (p RobustPolicy) Resolved() RobustPolicy { return p.withDefaults() }

// withDefaults resolves zero-valued fields to their documented
// defaults (MaxHops stays 0 here; it is resolved against N per route).
func (p RobustPolicy) withDefaults() RobustPolicy {
	if p.HopTimeout <= 0 {
		p.HopTimeout = 0.05
	}
	if p.Retries == 0 {
		p.Retries = 2
	} else if p.Retries < 0 {
		p.Retries = 0
	}
	if p.Backoff == 0 {
		p.Backoff = p.HopTimeout / 2
	} else if p.Backoff < 0 {
		p.Backoff = 0
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// RobustRouter routes queries over a Transport under a RobustPolicy.
// It wraps either a pinned *Snapshot (the serving path: zero
// allocations per route, dead-mask candidate skipping, Rebind to
// follow a Publisher) or any other Overlay (generic path). Like every
// Router it is not safe for concurrent use; hold one per goroutine.
type RobustRouter struct {
	snap *Snapshot
	ov   Overlay
	topo keyspace.Topology

	tr     Transport
	oracle deadOracle
	pol    RobustPolicy
	rng    *xrand.Stream

	cands []int32
	dists []float64
	candJ []int32 // candidate's index in cur's out-row (link accounting)

	// Observability, inherited from the pinned snapshot on Rebind or
	// pinned directly via SetObs. nil hooks = one nil check per query.
	hooks     *obsHooks
	hint      obs.Hint
	sampler   obs.Sampler
	obsPinned bool // SetObs was called; Rebind must not override
}

// NewRobustRouter wraps ov. The Transport may be nil (a perfect
// network: every send instant and successful — robust routing then
// degenerates to plain greedy). seed drives the router's own draws
// (backoff jitter, byzantine detour picks); give each router its own
// stream for deterministic replay.
//
// Snapshots that delegate routing to a retained source overlay
// (rebuild generations of Chord, Pastry, …) are rejected: their
// routing rule is not the distance-greedy walk this router re-runs
// per message.
func NewRobustRouter(ov Overlay, tr Transport, pol RobustPolicy, seed uint64) (*RobustRouter, error) {
	if ov == nil {
		return nil, fmt.Errorf("overlaynet: nil overlay")
	}
	r := &RobustRouter{
		ov:   ov,
		topo: keyspace.Ring,
		tr:   tr,
		pol:  pol.withDefaults(),
		rng:  xrand.New(seed),
	}
	if th, ok := ov.(topologyHaver); ok {
		r.topo = th.Topology()
	}
	if s, ok := ov.(*Snapshot); ok {
		if s.src != nil {
			return nil, fmt.Errorf("overlaynet: robust routing unsupported for delegating snapshot of %q", s.kind)
		}
		r.snap = s
		r.bindSnapObs(s.obs)
	}
	if tr != nil {
		r.oracle, _ = tr.(deadOracle)
	}
	return r, nil
}

// Rebind pins the router to a (newer) snapshot, keeping scratch and
// policy. Allocation-free; only valid for routers built over a
// Snapshot.
func (r *RobustRouter) Rebind(s *Snapshot) {
	r.snap = s
	r.ov = s
	r.topo = s.topo
	if !r.obsPinned && s.obs != r.hooks {
		r.bindSnapObs(s.obs)
	}
}

// SetObs installs instrumentation directly on the router, for robust
// routing over plain overlays or snapshots captured outside a
// Publisher. Pinned hooks survive Rebind; pass (nil, nil) to unpin and
// fall back to snapshot-carried hooks.
func (r *RobustRouter) SetObs(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil && tracer == nil {
		r.hooks, r.obsPinned = nil, false
		return
	}
	r.hooks = &obsHooks{reg: reg, tracer: tracer}
	r.hint = reg.NextHint()
	r.sampler = tracer.NewSampler()
	r.obsPinned = true
}

// bindSnapObs adopts the hooks a pinned snapshot carries, keeping the
// hint and sampler across epochs of the same registry/tracer.
func (r *RobustRouter) bindSnapObs(h *obsHooks) {
	if h != nil && (r.hooks == nil || h.reg != r.hooks.reg || h.tracer != r.hooks.tracer) {
		r.hint = h.reg.NextHint()
		r.sampler = h.tracer.NewSampler()
	}
	r.hooks = h
}

// Policy returns the resolved policy the router routes under.
func (r *RobustRouter) Policy() RobustPolicy { return r.pol }

// Route implements Router: RouteRobust collapsed to the legacy Result
// shape (degraded delivery still counts as arrived).
func (r *RobustRouter) Route(src int, target keyspace.Key) Result {
	rr := r.RouteRobust(src, target)
	return Result{Hops: rr.Hops, Dest: rr.Dest, Arrived: rr.Outcome.Arrived()}
}

// keysView returns the identifier slice the router routes over. For a
// pinned snapshot this is the lazily-materialized flat copy — built
// once per snapshot and cached, so re-pinning within an epoch stays
// allocation-free.
func (r *RobustRouter) keysView() []keyspace.Key {
	if r.snap != nil {
		return r.snap.Keys()
	}
	return r.ov.Keys()
}

// neighborsView returns u's out-row.
func (r *RobustRouter) neighborsView(u int) []int32 {
	if r.snap != nil {
		return r.snap.csr.Out(u)
	}
	return r.ov.Neighbors(u)
}

// maskDead reports whether the published fault mask marks slot u dead
// (the snapshot-learned knowledge a router may legitimately act on).
func (r *RobustRouter) maskDead(u int) bool {
	return r.snap != nil && r.snap.faults != nil && r.snap.faults.dead[u]
}

// RouteRobust routes one query from node src to the peer responsible
// for target, paying for every fault the Transport injects.
func (r *RobustRouter) RouteRobust(src int, target keyspace.Key) RobustResult {
	if r.hooks == nil {
		return r.routeRobust(src, target, nil)
	}
	return r.routeRobustObserved(src, target)
}

// routeRobustObserved wraps the core walk with counters, histograms and
// 1-in-N trace sampling. Outlined from RouteRobust so the
// uninstrumented path pays one nil check.
func (r *RobustRouter) routeRobustObserved(src int, target keyspace.Key) RobustResult {
	h := r.hooks
	trc := r.sampler.Start("robust", src, float64(target), 0)
	res := r.routeRobust(src, target, trc)
	if reg := h.reg; reg != nil {
		reg.RouteQueries.Inc(r.hint)
		reg.RouteHops.Add(r.hint, uint64(res.Hops))
		reg.RouteRetries.Add(r.hint, uint64(res.Retries))
		reg.RouteOutcomes[obsOutcome(res.Outcome)].Inc(r.hint)
		if res.Outcome.Arrived() {
			reg.HopsPerQuery.Observe(float64(res.Hops))
		} else {
			reg.RouteFailures.Inc(r.hint)
		}
		reg.VirtLatency.Observe(res.Latency)
	}
	if trc != nil {
		h.tracer.Finish(trc, res.Latency, res.Outcome.String())
	}
	return res
}

// routeRobust is the core walk. trc, when non-nil, receives one span
// per delivered hop, timeout and hijack, timed in accumulated virtual
// latency; recording reads only values the walk already computed.
func (r *RobustRouter) routeRobust(src int, target keyspace.Key, trc *obs.Trace) RobustResult {
	keys := r.keysView()
	n := len(keys)
	res := RobustResult{Dest: -1}
	if src < 0 || src >= n {
		res.Outcome = Unroutable
		return res
	}
	if r.maskDead(src) || (r.oracle != nil && r.oracle.Dead(keys[src])) {
		// A crashed node originates nothing.
		res.Outcome = Unroutable
		return res
	}
	pol := r.pol
	maxHops := pol.MaxHops
	if maxHops <= 0 {
		maxHops = 4 * n
	}
	var links []uint64
	if r.snap != nil && r.snap.obs != nil {
		links = r.snap.obs.links
	}
	cur := src
	dCur := r.topo.Distance(keys[cur], target)
	degraded := false
	for {
		if res.Hops >= maxHops {
			res.Outcome, res.Dest = TimedOut, cur
			return res
		}
		if pol.QueryTimeout > 0 && res.Latency >= pol.QueryTimeout {
			res.Outcome, res.Dest = TimedOut, cur
			return res
		}
		// Byzantine hijack: a compromised relay forwards the query to a
		// neighbour of its own choosing before honest routing gets a say.
		if res.Hops > 0 && r.tr != nil && r.tr.Misroute(keys[cur]) {
			nbrs := r.neighborsView(cur)
			hijacked := false
			if len(nbrs) > 0 {
				j := r.rng.Intn(len(nbrs))
				v := int(nbrs[j])
				if d := r.tr.Send(keys[cur], keys[v]); d.Status == netmodel.SendOK {
					if links != nil {
						atomic.AddUint64(&links[r.snap.csr.RowStart(cur)+j], 1)
					}
					dv := r.topo.Distance(keys[v], target)
					trc.Hop(res.Latency, d.Latency, int32(v), j, 0, obs.SpanHijack, dv)
					res.Latency += d.Latency
					res.Hops++
					cur, dCur = v, dv
					degraded, hijacked = true, true
				}
			}
			if !hijacked {
				// Hijacked into the void: the relay pretended to forward and
				// nothing arrived anywhere. The initiator only learns by
				// waiting out its timeout.
				res.Latency += pol.HopTimeout
				res.Outcome, res.Dest = TimedOut, cur
				return res
			}
			continue
		}
		nc := r.buildCandidates(cur, target, dCur, keys)
		if nc == 0 {
			return r.classifyStop(res, cur, dCur, target, keys, degraded)
		}
		advanced := false
		sawLost := false
		for ci := 0; ci < nc && !advanced; ci++ {
			v := int(r.cands[ci])
			if ci > 0 {
				degraded = true // next-best fallback in use
			}
			backoff := pol.Backoff
			for attempt := 0; ; attempt++ {
				var d netmodel.Delivery
				if r.tr != nil {
					d = r.tr.Send(keys[cur], keys[v])
				}
				if d.Status == netmodel.SendOK {
					if links != nil {
						atomic.AddUint64(&links[r.snap.csr.RowStart(cur)+int(r.candJ[ci])], 1)
					}
					trc.Hop(res.Latency, d.Latency, int32(v), ci, attempt, obs.SpanHop, r.dists[ci])
					res.Latency += d.Latency
					res.Hops++
					cur, dCur = v, r.dists[ci]
					advanced = true
					break
				}
				// The sender cannot tell a lost message from a dead peer:
				// both are a timeout. It retries either way; only the
				// classifier distinguishes them.
				trc.Hop(res.Latency, pol.HopTimeout, int32(v), ci, attempt, obs.SpanTimeout, r.dists[ci])
				res.Latency += pol.HopTimeout
				if d.Status == netmodel.SendLost {
					sawLost = true
				}
				if attempt >= pol.Retries {
					break
				}
				res.Retries++
				degraded = true
				res.Latency += r.backoffWait(&backoff)
			}
		}
		if !advanced {
			res.Dest = cur
			if sawLost {
				res.Outcome = TimedOut
			} else {
				res.Outcome = Unroutable
			}
			return res
		}
	}
}

// backoffWait returns the next backoff wait (jittered) and doubles the
// base for the following one.
func (r *RobustRouter) backoffWait(base *float64) float64 {
	w := *base
	*base *= 2
	if r.pol.Jitter > 0 {
		w *= 1 + r.pol.Jitter*(2*r.rng.Float64()-1)
	}
	return w
}

// buildCandidates fills r.cands/r.dists with cur's improving,
// mask-live out-neighbours in ascending distance order and returns the
// count. Scratch is reused: zero allocations once warm.
func (r *RobustRouter) buildCandidates(cur int, target keyspace.Key, dCur float64, keys []keyspace.Key) int {
	topo := r.topo
	curKey := keys[cur]
	r.cands = r.cands[:0]
	r.dists = r.dists[:0]
	r.candJ = r.candJ[:0]
	for j, v := range r.neighborsView(cur) {
		if r.maskDead(int(v)) {
			continue
		}
		vKey := keys[v]
		d := topo.Distance(vKey, target)
		if d < dCur || (d == dCur && topo.Advances(curKey, vKey, target)) {
			r.cands = append(r.cands, v)
			r.dists = append(r.dists, d)
			r.candJ = append(r.candJ, int32(j))
		}
	}
	// Insertion sort by distance; candidate lists are short.
	for i := 1; i < len(r.cands); i++ {
		for j := i; j > 0 && r.dists[j] < r.dists[j-1]; j-- {
			r.dists[j], r.dists[j-1] = r.dists[j-1], r.dists[j]
			r.cands[j], r.cands[j-1] = r.cands[j-1], r.cands[j]
			r.candJ[j], r.candJ[j-1] = r.candJ[j-1], r.candJ[j]
		}
	}
	return len(r.cands)
}

// classifyStop types a query that stopped at a live local minimum:
// Delivered when cur is a minimal-distance node for the target,
// DeliveredDegraded when cur is merely the closest *live* node (the
// responsible node itself is crashed), Unroutable otherwise — a live
// improvement exists but no live path reaches it from here.
func (r *RobustRouter) classifyStop(res RobustResult, cur int, dCur float64, target keyspace.Key, keys []keyspace.Key, degraded bool) RobustResult {
	res.Dest = cur
	arrivedClean := false
	if r.snap != nil {
		s := r.snap
		if i := s.rank.Nearest(s.topo, target); i >= 0 {
			arrivedClean = dCur <= s.topo.Distance(s.rank.KeyAt(i), target)
		}
	} else {
		best := r.topo.MaxDistance() + 1
		for _, k := range keys {
			if d := r.topo.Distance(k, target); d < best {
				best = d
			}
		}
		arrivedClean = dCur <= best
	}
	if arrivedClean {
		if degraded {
			res.Outcome = DeliveredDegraded
		} else {
			res.Outcome = Delivered
		}
		return res
	}
	// The responsible node may be dead: stopping at the closest live
	// node is still a (degraded) delivery.
	if dLive, ok := r.nearestLiveDistance(target, keys); ok && dCur <= dLive {
		res.Outcome = DeliveredDegraded
		return res
	}
	res.Outcome = Unroutable
	return res
}

// nearestLiveDistance returns the distance from target to the closest
// node that is neither mask-dead nor oracle-dead, and whether any
// liveness information was available at all (without a mask or an
// oracle there is nothing to soften, and the clean check already
// decided).
func (r *RobustRouter) nearestLiveDistance(target keyspace.Key, keys []keyspace.Key) (float64, bool) {
	hasMask := r.snap != nil && r.snap.faults != nil
	if !hasMask && r.oracle == nil {
		return 0, false
	}
	best := r.topo.MaxDistance() + 1
	found := false
	if r.snap != nil {
		// Rank-outward scan from the nearest rank: each directional walk
		// stops at its first live hit, so the cost is the dead run
		// around the target, not N (same argument as the snapshot's own
		// nearestLiveDistance).
		s := r.snap
		n := s.rank.n
		if n == 0 {
			return 0, false
		}
		start := s.rank.Nearest(s.topo, target)
		deadAt := func(i int) bool {
			if hasMask && s.faults.dead[s.rank.SlotAt(i)] {
				return true
			}
			return r.oracle != nil && r.oracle.Dead(s.rank.KeyAt(i))
		}
		for step, i := 0, start; step < n; step++ {
			if !deadAt(i) {
				if d := s.topo.Distance(s.rank.KeyAt(i), target); d < best {
					best, found = d, true
				}
				break
			}
			i++
			if i == n {
				if s.topo != keyspace.Ring {
					break
				}
				i = 0
			}
		}
		for step, i := 0, start; step < n; step++ {
			if !deadAt(i) {
				if d := s.topo.Distance(s.rank.KeyAt(i), target); d < best {
					best, found = d, true
				}
				break
			}
			i--
			if i < 0 {
				if s.topo != keyspace.Ring {
					break
				}
				i = n - 1
			}
		}
		return best, found
	}
	for _, k := range keys {
		if r.oracle.Dead(k) {
			continue
		}
		if d := r.topo.Distance(k, target); d < best {
			best, found = d, true
		}
	}
	return best, found
}
