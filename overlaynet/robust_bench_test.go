package overlaynet_test

import (
	"context"
	"fmt"
	"testing"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/netmodel"
	"smallworld/obs"
	"smallworld/overlaynet"
	"smallworld/xrand"
)

// BenchmarkRouteRobust measures fault-exposed routing over a pinned
// snapshot: greedy forwarding where every hop pays a transport draw,
// loss triggers retry/backoff, and dead candidates are either skipped
// via the published mask (mask=on) or discovered by timeout (mask=off)
// — the cost the serving-path fault wiring exists to avoid. ns/op is
// per query. The perfect-network row is the steady-state allocation
// contract: candidate scratch is reused, so routing allocates nothing
// once warm.
func BenchmarkRouteRobust(b *testing.B) {
	type config struct {
		name string
		cfg  netmodel.Config
		mask bool
	}
	configs := []config{
		{"perfect", netmodel.Config{}, false},
		{"loss=5%", netmodel.Config{Loss: 0.05}, false},
		{"dead=10%/mask=off", netmodel.Config{DeadFrac: 0.1}, false},
		{"dead=10%/mask=on", netmodel.Config{DeadFrac: 0.1}, true},
	}
	for _, cfg := range configs {
		b.Run(fmt.Sprintf("N=%d/%s", 1<<12, cfg.name), func(b *testing.B) {
			benchRouteRobust(b, 1<<12, cfg.cfg, cfg.mask)
		})
	}
}

// BenchmarkRouteRobustObs is BenchmarkRouteRobust's loss=5% row under
// the observability plane: counters pins a registry on the router,
// tracing adds the 1-in-128 sampling gate. Same acceptance bar as
// BenchmarkRouteGreedyObs — ≤5% over off, 0 allocs/op in every mode.
func BenchmarkRouteRobustObs(b *testing.B) {
	for _, mode := range []string{"off", "counters", "tracing"} {
		b.Run(mode, func(b *testing.B) {
			benchRouteRobustObs(b, mode)
		})
	}
}

func benchRouteRobustObs(b *testing.B, mode string) {
	var reg *obs.Registry
	var tracer *obs.Tracer
	switch mode {
	case "counters":
		reg = obs.NewRegistry()
	case "tracing":
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(obs.TracerConfig{})
	}
	benchRouteRobustWith(b, 1<<12, netmodel.Config{Loss: 0.05}, false, reg, tracer)
}

func benchRouteRobust(b *testing.B, n int, cfg netmodel.Config, mask bool) {
	benchRouteRobustWith(b, n, cfg, mask, nil, nil)
}

func benchRouteRobustWith(b *testing.B, n int, cfg netmodel.Config, mask bool, reg *obs.Registry, tracer *obs.Tracer) {
	ctx := context.Background()
	dyn, err := overlaynet.NewIncremental(ctx, "smallworld-skewed", overlaynet.Options{
		N: n, Seed: 9, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		b.Fatal(err)
	}
	var tr overlaynet.Transport
	var m *netmodel.Model
	if cfg != (netmodel.Config{}) {
		if m, err = netmodel.New(cfg, 7); err != nil {
			b.Fatal(err)
		}
		tr = m
	}
	snap := overlaynet.NewSnapshot(dyn)
	if mask {
		pub, err := overlaynet.NewPublisher(dyn)
		if err != nil {
			b.Fatal(err)
		}
		pub.SetFaultPlane(m)
		snap = pub.Snapshot()
	}
	rr, err := overlaynet.NewRobustRouter(snap, tr, overlaynet.RobustPolicy{}, 3)
	if err != nil {
		b.Fatal(err)
	}
	if reg != nil || tracer != nil {
		rr.SetObs(reg, tracer)
	}
	rng := xrand.New(21)
	srcs := make([]int, 4096)
	targets := make([]keyspace.Key, len(srcs))
	for i := range srcs {
		for {
			srcs[i] = rng.Intn(snap.N())
			if !snap.Dead(srcs[i]) {
				break
			}
		}
		targets[i] = keyspace.Key(rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (len(srcs) - 1)
		rr.RouteRobust(srcs[j], targets[j])
	}
}
