package overlaynet

// The golden equivalence suite: for every registered topology, the
// overlaynet.Build path must produce a bit-identical graph — same node
// identifiers, same out-neighbour lists — and identical routes (hops,
// terminal node, arrival) as the legacy package-level constructors,
// for the same (config, seed). This is what makes the registry a safe
// front door: selecting a topology by name costs nothing in fidelity.

import (
	"context"
	"math"
	"testing"

	"smallworld"
	"smallworld/dist"
	"smallworld/internal/dht/can"
	"smallworld/internal/dht/chord"
	"smallworld/internal/dht/pastry"
	"smallworld/internal/dht/pgrid"
	"smallworld/internal/dht/symphony"
	"smallworld/internal/overlay"
	"smallworld/internal/wattsstrogatz"
	"smallworld/keyspace"
	"smallworld/xrand"
)

const (
	goldenN      = 256
	goldenSeed   = 7
	goldenRoutes = 200
)

// goldenTargets returns a deterministic batch of (src, target) probes.
func goldenTargets(n int) []Query {
	rng := xrand.New(99)
	qs := make([]Query, goldenRoutes)
	for i := range qs {
		qs[i] = Query{Src: rng.Intn(n), Target: keyspace.Key(rng.Float64())}
	}
	return qs
}

// checkGraphEqual requires identical keys and out-neighbour lists.
func checkGraphEqual(t *testing.T, want, got Overlay) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N: legacy %d, registry %d", want.N(), got.N())
	}
	for u := 0; u < want.N(); u++ {
		if want.Key(u) != got.Key(u) {
			t.Fatalf("key of node %d: legacy %v, registry %v", u, want.Key(u), got.Key(u))
		}
		w, g := want.Neighbors(u), got.Neighbors(u)
		if len(w) != len(g) {
			t.Fatalf("node %d degree: legacy %d, registry %d", u, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d neighbour %d: legacy %d, registry %d", u, i, w[i], g[i])
			}
		}
	}
}

// checkRoutesEqual requires identical results for the golden probes.
func checkRoutesEqual(t *testing.T, want, got Overlay) {
	t.Helper()
	wr, gr := want.NewRouter(), got.NewRouter()
	for _, q := range goldenTargets(want.N()) {
		w := wr.Route(q.Src, q.Target)
		g := gr.Route(q.Src, q.Target)
		if w != g {
			t.Fatalf("route %d->%v: legacy %+v, registry %+v", q.Src, q.Target, w, g)
		}
	}
}

func mustBuild(t *testing.T, name string, opts Options) Overlay {
	t.Helper()
	ov, err := Build(context.Background(), name, opts)
	if err != nil {
		t.Fatalf("Build(%q): %v", name, err)
	}
	if ov.Kind() != name {
		t.Fatalf("Kind() = %q, want %q", ov.Kind(), name)
	}
	return ov
}

// --- the small-world family: compared against the raw legacy router ---

func checkSmallWorldGolden(t *testing.T, cfg smallworld.Config, name string, opts Options) {
	t.Helper()
	legacy, err := smallworld.Build(cfg)
	if err != nil {
		t.Fatalf("legacy build: %v", err)
	}
	ov := mustBuild(t, name, opts)
	checkGraphEqual(t, WrapNetwork(legacy), ov)

	// Route through the *legacy* Router directly — not through the
	// adapter — so the comparison covers the whole legacy entry point.
	router := legacy.NewRouter()
	ovRouter := ov.NewRouter()
	for _, q := range goldenTargets(legacy.N()) {
		rt := router.RouteGreedy(q.Src, q.Target)
		want := Result{Hops: rt.Hops(), Dest: rt.Path[len(rt.Path)-1], Arrived: rt.Arrived}
		if got := ovRouter.Route(q.Src, q.Target); got != want {
			t.Fatalf("route %d->%v: legacy %+v, registry %+v", q.Src, q.Target, want, got)
		}
	}
}

func TestGoldenSmallWorldUniform(t *testing.T) {
	cfg := smallworld.UniformConfig(goldenN, goldenSeed)
	cfg.Sampler = smallworld.Protocol
	cfg.Topology = keyspace.Ring
	checkSmallWorldGolden(t, cfg, "smallworld-uniform",
		Options{N: goldenN, Seed: goldenSeed, Topology: keyspace.Ring})
}

func TestGoldenSmallWorldSkewed(t *testing.T) {
	d := dist.NewPower(0.8)
	cfg := smallworld.SkewedConfig(goldenN, d, goldenSeed)
	cfg.Sampler = smallworld.Protocol
	cfg.Topology = keyspace.Ring
	checkSmallWorldGolden(t, cfg, "smallworld-skewed",
		Options{N: goldenN, Seed: goldenSeed, Dist: d, Topology: keyspace.Ring})
}

func TestGoldenSmallWorldExactSampler(t *testing.T) {
	d := dist.NewTruncExp(6)
	cfg := smallworld.SkewedConfig(goldenN, d, goldenSeed)
	cfg.Sampler = smallworld.Exact
	cfg.Topology = keyspace.Ring
	checkSmallWorldGolden(t, cfg, "smallworld-skewed",
		Options{N: goldenN, Seed: goldenSeed, Dist: d, Topology: keyspace.Ring, Sampler: "exact"})
}

func TestGoldenKleinberg(t *testing.T) {
	cfg := smallworld.KleinbergConfig(goldenN, 4, 1, goldenSeed)
	cfg.Sampler = smallworld.Protocol
	cfg.Topology = keyspace.Ring
	checkSmallWorldGolden(t, cfg, "kleinberg",
		Options{N: goldenN, Seed: goldenSeed, Topology: keyspace.Ring})
}

// --- Watts–Strogatz: compared against the legacy greedy route ---

func TestGoldenWattsStrogatz(t *testing.T) {
	legacy, err := wattsstrogatz.Build(wattsstrogatz.Config{N: goldenN, K: 8, P: 0.1, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "wattsstrogatz", Options{N: goldenN, Seed: goldenSeed})
	for u := 0; u < goldenN; u++ {
		if legacy.Key(u) != ov.Key(u) {
			t.Fatalf("key of node %d differs", u)
		}
		w, g := legacy.Graph().Out(u), ov.Neighbors(u)
		if len(w) != len(g) {
			t.Fatalf("node %d degree: legacy %d, registry %d", u, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("node %d neighbour %d differs", u, i)
			}
		}
	}
	router := ov.NewRouter()
	rng := xrand.New(99)
	for i := 0; i < goldenRoutes; i++ {
		src, dst := rng.Intn(goldenN), rng.Intn(goldenN)
		hops, last, arrived := legacy.Route(src, dst)
		want := Result{Hops: hops, Dest: last, Arrived: arrived}
		if got := router.Route(src, legacy.Key(dst)); got != want {
			t.Fatalf("route %d->%d: legacy %+v, registry %+v", src, dst, want, got)
		}
	}
}

// --- DHT baselines: legacy constructor vs registry, plus raw lookups ---

func TestGoldenChord(t *testing.T) {
	legacy := chord.Build(goldenN, goldenSeed)
	ov := mustBuild(t, "chord", Options{N: goldenN, Seed: goldenSeed})
	checkGraphEqual(t, wrapChord(legacy), ov)
	checkRoutesEqual(t, wrapChord(legacy), ov)
	// Raw legacy lookups must agree with the adapter's key projection.
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		hops, owner := legacy.Lookup(q.Src, keyToU64(q.Target))
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || got.Dest != owner {
			t.Fatalf("lookup %d->%v: legacy (%d,%d), registry %+v", q.Src, q.Target, hops, owner, got)
		}
	}
}

func TestGoldenPastry(t *testing.T) {
	legacy, err := pastry.Build(pastry.Config{N: goldenN, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "pastry", Options{N: goldenN, Seed: goldenSeed})
	checkGraphEqual(t, wrapPastry(legacy), ov)
	checkRoutesEqual(t, wrapPastry(legacy), ov)
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		hops, owner := legacy.Lookup(q.Src, keyToU64(q.Target))
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || got.Dest != owner {
			t.Fatalf("lookup %d->%v: legacy (%d,%d), registry %+v", q.Src, q.Target, hops, owner, got)
		}
	}
}

func TestGoldenPGrid(t *testing.T) {
	d := dist.NewPower(0.8)
	legacy, err := pgrid.Build(pgrid.Config{N: goldenN, Dist: d, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "pgrid", Options{N: goldenN, Seed: goldenSeed, Dist: d})
	checkGraphEqual(t, wrapPGrid(legacy), ov)
	checkRoutesEqual(t, wrapPGrid(legacy), ov)
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		hops, owner := legacy.Lookup(q.Src, q.Target)
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || got.Dest != owner {
			t.Fatalf("lookup %d->%v: legacy (%d,%d), registry %+v", q.Src, q.Target, hops, owner, got)
		}
	}
}

func TestGoldenSymphony(t *testing.T) {
	legacy, err := symphony.Build(symphony.Config{N: goldenN, K: smallworld.Log2Degree()(goldenN), Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "symphony", Options{N: goldenN, Seed: goldenSeed})
	checkGraphEqual(t, wrapSymphony(legacy, "symphony"), ov)
	checkRoutesEqual(t, wrapSymphony(legacy, "symphony"), ov)
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		hops, last := legacy.Lookup(q.Src, q.Target)
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || got.Dest != last {
			t.Fatalf("lookup %d->%v: legacy (%d,%d), registry %+v", q.Src, q.Target, hops, last, got)
		}
	}
}

func TestGoldenMercury(t *testing.T) {
	d := dist.NewPower(0.8)
	legacy, err := symphony.Build(symphony.Config{
		N: goldenN, K: smallworld.Log2Degree()(goldenN), Mode: symphony.Mercury, Dist: d, Seed: goldenSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "mercury", Options{N: goldenN, Seed: goldenSeed, Dist: d})
	checkGraphEqual(t, wrapSymphony(legacy, "mercury"), ov)
	checkRoutesEqual(t, wrapSymphony(legacy, "mercury"), ov)
}

func TestGoldenCAN(t *testing.T) {
	d := dist.NewPower(0.8)
	legacy, err := can.Build(can.Config{N: goldenN, Dims: 2, Dist: d, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "can", Options{N: goldenN, Seed: goldenSeed, Dist: d})
	checkGraphEqual(t, wrapCAN(legacy), ov)
	checkRoutesEqual(t, wrapCAN(legacy), ov)
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		var p can.Point
		p[0] = float64(q.Target)
		p[1] = canProbeCoord
		hops, owner := legacy.Lookup(q.Src, p)
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || got.Dest != owner {
			t.Fatalf("lookup %d->%v: legacy (%d,%d), registry %+v", q.Src, q.Target, hops, owner, got)
		}
	}
}

// --- the live protocol simulation ---

func TestGoldenProtocol(t *testing.T) {
	d := dist.NewTruncExp(6)
	legacy := overlay.New(overlay.Config{Dist: d, Oracle: true, Seed: goldenSeed})
	if err := legacy.Bootstrap(goldenN); err != nil {
		t.Fatal(err)
	}
	ov := mustBuild(t, "protocol", Options{N: goldenN, Seed: goldenSeed, Dist: d, Oracle: true})
	peers := legacy.Peers()
	if len(peers) != ov.N() {
		t.Fatalf("N: legacy %d, registry %d", len(peers), ov.N())
	}
	for u, p := range peers {
		if p.ID != ov.Key(u) {
			t.Fatalf("key of node %d: legacy %v, registry %v", u, p.ID, ov.Key(u))
		}
	}
	router := ov.NewRouter()
	for _, q := range goldenTargets(goldenN) {
		term, hops := legacy.Lookup(peers[q.Src], q.Target)
		got := router.Route(q.Src, q.Target)
		if got.Hops != hops || peers[got.Dest] != term {
			t.Fatalf("lookup %d->%v: legacy (%v,%d), registry %+v", q.Src, q.Target, term.ID, hops, got)
		}
	}
}

// TestGoldenKeyProjection pins the 64-bit ring projection: monotone and
// inverse up to the float64 mantissa.
func TestGoldenKeyProjection(t *testing.T) {
	rng := xrand.New(5)
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		k := keyspace.Key(rng.Float64())
		u := keyToU64(k)
		back := u64ToKey(u)
		if math.Abs(float64(back-k)) > 1.0/(1<<52) {
			t.Fatalf("projection drift: %v -> %d -> %v", k, u, back)
		}
		_ = prev
	}
	if keyToU64(0) != 0 {
		t.Fatal("keyToU64(0) != 0")
	}
	if keyToU64(keyspace.Key(math.Nextafter(1, 0))) == 0 {
		t.Fatal("keyToU64 near 1 wrapped")
	}
	// Monotone on a sorted sample.
	last := uint64(0)
	for i := 0; i <= 1000; i++ {
		u := keyToU64(keyspace.Key(float64(i) / 1001))
		if u < last {
			t.Fatalf("projection not monotone at %d", i)
		}
		last = u
	}
}
