package overlaynet

import (
	"sort"
	"sync/atomic"

	"smallworld/graph"
	"smallworld/keyspace"
	"smallworld/obs"
)

// Snapshot is an immutable, routable picture of an overlay at one
// publication epoch: the full CSR adjacency, the identifier array, and
// the sorted rank index. Everything a query needs is frozen inside the
// value, so any number of goroutines may route against the same
// Snapshot concurrently — and against *different* Snapshots of the same
// overlay — without synchronisation. Snapshots are produced by a
// Publisher (or directly by NewSnapshot) and are never mutated after
// publication; that invariant, not locking, is what makes the serving
// read path safe under churn.
type Snapshot struct {
	kind  string
	epoch uint64
	topo  keyspace.Topology
	keys  keyView    // identifier per slot (chunked, structurally shared)
	csr   *graph.CSR // full out-adjacency at capture time
	rank  rankView   // sorted rank index: rank→(key, slot), chunked

	// Lazily-materialized flat copies for compatibility callers
	// (Overlay.Keys, the store's SortedKeys). Built at most once per
	// snapshot and cached; the store is an atomic pointer only because
	// two readers may materialize concurrently — both results are
	// identical, so the race is benign. Never touched by the routing
	// hot paths, which read the chunked views directly.
	flatKeys   atomic.Pointer[[]keyspace.Key]
	flatSorted atomic.Pointer[keyspace.Points]

	// src, when non-nil, is a retained *immutable* overlay whose own
	// routing semantics the snapshot delegates to. Distance-greedy
	// routing over the captured CSR is exact for the small-world family
	// (bidirectional rings), but overlays with directional routing
	// rules — Chord's clockwise fingers, Pastry's digit correction —
	// would strand most queries under it; their rebuild generations are
	// never mutated after construction, so the snapshot keeps the
	// generation itself and routes through its NewRouter.
	src Overlay

	// faults, when non-nil, is the fault mask materialised at capture
	// time from the Publisher's FaultPlane: which slots were dead (or
	// unreachable from the publisher's vantage) as of the recorded
	// fault epoch. Immutable like everything else in the snapshot, so
	// SnapshotRouters skip dead candidates with one indexed load and
	// zero allocations.
	faults *snapFaults

	// obs, when non-nil, is the instrumentation attached by a Publisher
	// carrying a registry/tracer (see obs.go). The hooks' counters are
	// the only mutable state reachable from a snapshot — updated
	// atomically, read only by scrapers, and never consulted by routing
	// decisions.
	obs *obsHooks
}

// snapFaults is a snapshot's frozen fault mask.
type snapFaults struct {
	epoch uint64
	dead  []bool
	n     int
}

// buildFaultMask materialises fp's current view over s's population.
// With a vantage, nodes the plane reports unreachable from it (the far
// side of a partition) are masked too — partition-aware serving.
func buildFaultMask(s *Snapshot, fp FaultPlane, vantage keyspace.Key, hasVantage bool) *snapFaults {
	f := &snapFaults{epoch: fp.FaultEpoch(), dead: make([]bool, s.keys.n)}
	rp, _ := fp.(ReachabilityPlane)
	for u := 0; u < s.keys.n; u++ {
		k := s.keys.At(u)
		if fp.Dead(k) || (hasVantage && rp != nil && rp.Unreachable(vantage, k)) {
			f.dead[u] = true
			f.n++
		}
	}
	return f
}

// Snapshotter is implemented by Dynamic overlays that can emit an
// immutable snapshot of their current state more cheaply than the
// generic row-by-row capture (the incremental overlay shares its
// compacted base CSR). CaptureSnapshot must only be called from the
// writer side — concurrent membership mutation during capture is the
// caller's race, not the Snapshot's.
type Snapshotter interface {
	CaptureSnapshot() *Snapshot
}

// topologyHaver is implemented by overlays that know their key-space
// geometry; overlays without it are treated as ring-native, which every
// DHT adapter in the registry is.
type topologyHaver interface {
	Topology() keyspace.Topology
}

// NewSnapshot captures ov's current state as an immutable Snapshot. If
// ov implements Snapshotter the overlay's own (cheaper) capture is
// used; otherwise keys and adjacency are copied row by row and the rank
// index is rebuilt, O(N log N + M). The caller must guarantee ov is not
// mutated during the capture (hold the writer lock; Publisher does).
func NewSnapshot(ov Overlay) *Snapshot {
	if s, ok := ov.(Snapshotter); ok {
		return s.CaptureSnapshot()
	}
	n := ov.N()
	topo := keyspace.Ring
	if th, ok := ov.(topologyHaver); ok {
		topo = th.Topology()
	}
	s := &Snapshot{
		kind: ov.Kind(),
		topo: topo,
	}
	flat := append([]keyspace.Key(nil), ov.Keys()...)
	s.keys = newKeyView(flat)
	s.flatKeys.Store(&flat)
	offsets := make([]int32, n+1)
	size := 0
	for u := 0; u < n; u++ {
		size += len(ov.Neighbors(u))
	}
	targets := make([]int32, 0, size)
	for u := 0; u < n; u++ {
		targets = append(targets, ov.Neighbors(u)...)
		offsets[u+1] = int32(len(targets))
	}
	s.csr = graph.NewCSR(offsets, targets)
	s.buildRankIndex(flat)
	return s
}

// buildRankIndex derives the chunked rank index from flat keys. The
// freshly built flat arrays seed the snapshot's lazy caches — they are
// already materialized, so compatibility callers get them for free.
func (s *Snapshot) buildRankIndex(flat []keyspace.Key) {
	n := len(flat)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return flat[order[i]] < flat[order[j]]
	})
	byKey := make(keyspace.Points, n)
	for i, id := range order {
		byKey[i] = flat[id]
	}
	s.rank = newRankView(byKey, order)
	s.flatSorted.Store(&byKey)
}

// Kind returns the wrapped overlay's kind.
func (s *Snapshot) Kind() string { return s.kind }

// Epoch returns the publication epoch, starting at 1 for the snapshot a
// Publisher takes at construction. Snapshots captured directly through
// NewSnapshot carry epoch 0.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// FaultEpoch returns the fault-plane epoch the snapshot's fault mask
// was materialised at, 0 when the snapshot carries no mask (no
// FaultPlane installed on the Publisher).
func (s *Snapshot) FaultEpoch() uint64 {
	if s.faults == nil {
		return 0
	}
	return s.faults.epoch
}

// Dead reports whether the snapshot's fault mask marks slot u dead.
// Always false without a mask.
func (s *Snapshot) Dead(u int) bool {
	return s.faults != nil && s.faults.dead[u]
}

// DeadCount returns the number of masked slots.
func (s *Snapshot) DeadCount() int {
	if s.faults == nil {
		return 0
	}
	return s.faults.n
}

// Topology returns the key-space geometry the snapshot routes under.
func (s *Snapshot) Topology() keyspace.Topology { return s.topo }

// N returns the number of nodes frozen in the snapshot.
func (s *Snapshot) N() int { return s.keys.n }

// Key returns node u's identifier.
func (s *Snapshot) Key(u int) keyspace.Key { return s.keys.At(u) }

// Keys returns all identifiers, indexed by node. Read-only. The flat
// slice is materialized from the chunked view on first call and cached
// for the snapshot's lifetime — O(N) once, free afterwards.
func (s *Snapshot) Keys() []keyspace.Key {
	if p := s.flatKeys.Load(); p != nil {
		return *p
	}
	flat := s.keys.materialize()
	s.flatKeys.Store(&flat)
	return flat
}

// Neighbors returns u's frozen out-row. Read-only, never allocates.
func (s *Snapshot) Neighbors(u int) []int32 { return s.csr.Out(u) }

// Stats summarises the frozen adjacency.
func (s *Snapshot) Stats() Stats { return statsOf(s) }

// CSR exposes the frozen adjacency for analysis callers. Read-only.
func (s *Snapshot) CSR() *graph.CSR { return s.csr }

// Responsible returns the slot whose identifier is nearest to target
// under the snapshot's topology — the node a correctly terminating
// greedy route ends at.
func (s *Snapshot) Responsible(target keyspace.Key) int {
	i := s.rank.Nearest(s.topo, target)
	if i < 0 {
		return -1
	}
	return int(s.rank.SlotAt(i))
}

// NewRouter returns routing scratch pinned to this snapshot. The
// returned router is a *SnapshotRouter; Rebind moves it to a newer
// epoch without allocating, which is how serving loops follow a
// Publisher while staying allocation-free.
func (s *Snapshot) NewRouter() Router { return &SnapshotRouter{s: s} }

// SnapshotRouter routes greedily against one pinned Snapshot. It holds
// no per-route scratch, so Route performs zero heap allocations; it is
// still not safe for concurrent use (hold one per goroutine), but any
// number of routers may share one Snapshot. For snapshots that delegate
// to a retained source overlay (see Snapshot.src) the inner router is
// built lazily once per pinned snapshot — allocation-free within an
// epoch.
type SnapshotRouter struct {
	s       *Snapshot
	inner   Router    // delegated router, for snapshots with a src
	innerOf *Snapshot // snapshot the inner router was built for

	// Observability state, bound lazily to the pinned snapshot's hooks
	// (see bindObs). All nil/zero — and one pointer compare per Route —
	// when serving an uninstrumented snapshot.
	hooks   *obsHooks
	hint    obs.Hint
	sampler obs.Sampler
}

// Rebind pins the router to a (newer) snapshot. Allocation-free (for
// delegating snapshots, until the first Route on the new epoch).
func (r *SnapshotRouter) Rebind(s *Snapshot) { r.s = s }

// Pinned returns the snapshot the router currently routes against.
func (r *SnapshotRouter) Pinned() *Snapshot { return r.s }

// Route implements Router with the same greedy rule as the static
// small-world router: forward to the out-neighbour closest to the
// target (exact-tie arc-advance tie-break), stop when no neighbour
// improves. A source outside the snapshot's population — possible when
// the query was drawn against a different epoch — fails cleanly with
// Arrived false rather than routing from an arbitrary slot.
func (r *SnapshotRouter) Route(src int, target keyspace.Key) Result {
	if r.s.obs == nil {
		return r.route(src, target, nil)
	}
	return r.routeObserved(src, target)
}

// route is the uninstrumented core Route body; tr, when non-nil, is the
// sampled trace the inner walk appends hop spans to.
func (r *SnapshotRouter) route(src int, target keyspace.Key, tr *obs.Trace) Result {
	s := r.s
	if src < 0 || src >= s.keys.n {
		return Result{Dest: -1}
	}
	if s.faults != nil && s.faults.dead[src] {
		// A crashed node originates nothing; fail cleanly rather than
		// routing on a dead peer's behalf.
		return Result{Dest: -1}
	}
	if s.src != nil {
		// Delegated walk: queries/hops/outcomes still count in
		// routeObserved, but hop spans and link traffic exist only on
		// the CSR loops below — the source router is opaque here.
		if r.innerOf != s {
			r.inner = s.src.NewRouter()
			r.innerOf = s
		}
		return r.inner.Route(src, target)
	}
	if s.topo == keyspace.Ring {
		return r.routeRing(src, target, tr)
	}
	return r.routeLine(src, target, tr)
}

// routeObserved routes against an instrumented snapshot: counters,
// hop histogram and 1-in-N trace sampling around the same core walk.
// Outlined from Route so the uninstrumented path pays one nil check.
func (r *SnapshotRouter) routeObserved(src int, target keyspace.Key) Result {
	h := r.s.obs
	if h != r.hooks {
		r.bindObs(h)
	}
	tr := r.sampler.Start("route", src, float64(target), 0)
	res := r.route(src, target, tr)
	if reg := h.reg; reg != nil {
		reg.RouteQueries.Inc(r.hint)
		reg.RouteHops.Add(r.hint, uint64(res.Hops))
		if res.Arrived {
			reg.HopsPerQuery.Observe(float64(res.Hops))
		} else {
			reg.RouteFailures.Inc(r.hint)
		}
	}
	if tr != nil {
		outcome := "arrived"
		if !res.Arrived {
			outcome = "stopped"
		}
		h.tracer.Finish(tr, float64(res.Hops), outcome)
	}
	return res
}

// bindObs (re)binds the router's shard hint and trace sampler when the
// pinned snapshot's hooks change. A new epoch from the same Publisher
// reuses hint and sampler (same registry/tracer); only switching to a
// different registry re-draws them.
func (r *SnapshotRouter) bindObs(h *obsHooks) {
	if h != nil && (r.hooks == nil || h.reg != r.hooks.reg || h.tracer != r.hooks.tracer) {
		r.hint = h.reg.NextHint()
		r.sampler = h.tracer.NewSampler()
	}
	r.hooks = h
}

func (r *SnapshotRouter) routeRing(src int, target keyspace.Key, tr *obs.Trace) Result {
	s := r.s
	var links []uint64
	if s.obs != nil {
		links = s.obs.links
	}
	cur := src
	dCur := s.greedyDistance(cur, target)
	guard := 2 * s.keys.n
	hops := 0
	for ; hops < guard; hops++ {
		best, bestD, bestJ := s.stepRing(cur, dCur, target)
		if best == -1 {
			break
		}
		if links != nil {
			atomic.AddUint64(&links[s.csr.RowStart(cur)+bestJ], 1)
		}
		tr.Hop(float64(hops), 1, int32(best), bestJ, 0, obs.SpanHop, bestD)
		cur, dCur = best, bestD
	}
	return Result{Hops: hops, Dest: cur, Arrived: r.arrived(dCur, target)}
}

func (r *SnapshotRouter) routeLine(src int, target keyspace.Key, tr *obs.Trace) Result {
	s := r.s
	var links []uint64
	if s.obs != nil {
		links = s.obs.links
	}
	cur := src
	dCur := s.greedyDistance(cur, target)
	guard := 2 * s.keys.n
	hops := 0
	for ; hops < guard; hops++ {
		best, bestD, bestJ := s.stepLine(cur, dCur, target)
		if best == -1 {
			break
		}
		if links != nil {
			atomic.AddUint64(&links[s.csr.RowStart(cur)+bestJ], 1)
		}
		tr.Hop(float64(hops), 1, int32(best), bestJ, 0, obs.SpanHop, bestD)
		cur, dCur = best, bestD
	}
	return Result{Hops: hops, Dest: cur, Arrived: r.arrived(dCur, target)}
}

// stepRing is the ring geometry's greedy candidate scan — THE single
// definition of one routing step, shared by SnapshotRouter's inner
// loop and the stepwise GreedyStep API the sharded serving plane walks
// hop by hop. It returns the best improving out-neighbour of cur (its
// index, its distance to target, and its position j in cur's row), or
// best == -1 when no live neighbour improves on dCur. The float fold
// and the exact-tie Advances tie-break are byte-for-byte the historic
// inline loop: any change here changes routes everywhere at once,
// which is exactly what the sharded bit-identity contract requires.
func (s *Snapshot) stepRing(cur int, dCur float64, target keyspace.Key) (best int, bestD float64, bestJ int) {
	spine, csr := s.keys.spine, s.csr
	var deadMask []bool
	if s.faults != nil {
		deadMask = s.faults.dead
	}
	tf := float64(target)
	best, bestD, bestJ = -1, dCur, -1
	bestKey := spine[cur>>keyChunkShift][cur&keyChunkMask]
	for j, v := range csr.Out(cur) {
		if deadMask != nil && deadMask[v] {
			continue
		}
		vKey := spine[v>>keyChunkShift][v&keyChunkMask]
		d := float64(vKey) - tf
		if d < 0 {
			d = -d
		}
		if d > 0.5 {
			d = 1 - d
		}
		if d < bestD || (d == bestD && keyspace.Ring.Advances(bestKey, vKey, target)) {
			best, bestD, bestJ, bestKey = int(v), d, j, vKey
		}
	}
	return best, bestD, bestJ
}

// stepLine is stepRing for the line geometry (no distance fold).
func (s *Snapshot) stepLine(cur int, dCur float64, target keyspace.Key) (best int, bestD float64, bestJ int) {
	spine, csr := s.keys.spine, s.csr
	var deadMask []bool
	if s.faults != nil {
		deadMask = s.faults.dead
	}
	tf := float64(target)
	best, bestD, bestJ = -1, dCur, -1
	bestKey := spine[cur>>keyChunkShift][cur&keyChunkMask]
	for j, v := range csr.Out(cur) {
		if deadMask != nil && deadMask[v] {
			continue
		}
		vKey := spine[v>>keyChunkShift][v&keyChunkMask]
		d := float64(vKey) - tf
		if d < 0 {
			d = -d
		}
		if d < bestD || (d == bestD && keyspace.Line.Advances(bestKey, vKey, target)) {
			best, bestD, bestJ, bestKey = int(v), d, j, vKey
		}
	}
	return best, bestD, bestJ
}

// greedyDistance computes a node's distance to target with the exact
// float operation sequence the routing loops have always used (manual
// abs + ring fold), so stepwise callers start from bit-identical
// state.
func (s *Snapshot) greedyDistance(u int, target keyspace.Key) float64 {
	d := float64(s.keys.spine[u>>keyChunkShift][u&keyChunkMask]) - float64(target)
	if d < 0 {
		d = -d
	}
	if s.topo == keyspace.Ring && d > 0.5 {
		d = 1 - d
	}
	return d
}

// The Greedy* methods expose the snapshot's routing walk one hop at a
// time, for executors that move a query between processes mid-route —
// the sharded serving plane hands (cur, dCur) across a wire between
// steps. The contract: a walk driven as
//
//	d, ok := s.GreedyInit(src, target)
//	for hops := 0; ok && hops < s.GreedyGuard(); {
//		next, dNext := s.GreedyStep(cur, dCur, target)
//		if next == -1 { break }
//		hops++; cur, dCur = next, dNext
//	}
//	arrived := s.GreedyArrived(dCur, target)
//
// produces bit-identical (dest, hops, arrived) to SnapshotRouter.Route
// on the same snapshot, because both run the same step functions on
// the same float state. dCur must be carried exactly (transports use
// the IEEE bit pattern, wire.AppendF64) — re-deriving it from the
// current node is equivalent, but carrying it keeps the step O(degree)
// with no re-read.

// GreedyInit begins a stepwise walk from src: it returns src's
// distance to target and ok=false when the walk cannot start — src
// outside the population or masked dead — which corresponds to
// Route's clean Result{Dest: -1} failure. Delegated snapshots (see
// Delegated) cannot be stepped.
func (s *Snapshot) GreedyInit(src int, target keyspace.Key) (d float64, ok bool) {
	if src < 0 || src >= s.keys.n || s.src != nil {
		return 0, false
	}
	if s.faults != nil && s.faults.dead[src] {
		return 0, false
	}
	return s.greedyDistance(src, target), true
}

// GreedyStep advances one hop: the best improving live neighbour of
// cur, or next == -1 when the walk has reached its local minimum. dCur
// must be the value the previous step (or GreedyInit) returned.
func (s *Snapshot) GreedyStep(cur int, dCur float64, target keyspace.Key) (next int, dNext float64) {
	if s.topo == keyspace.Ring {
		next, dNext, _ = s.stepRing(cur, dCur, target)
		return next, dNext
	}
	next, dNext, _ = s.stepLine(cur, dCur, target)
	return next, dNext
}

// GreedyStepJ is GreedyStep plus the chosen neighbour's position j in
// cur's adjacency row — what per-edge side tables (obs link counters)
// key on. j is -1 when next is.
func (s *Snapshot) GreedyStepJ(cur int, dCur float64, target keyspace.Key) (next int, dNext float64, j int) {
	if s.topo == keyspace.Ring {
		return s.stepRing(cur, dCur, target)
	}
	return s.stepLine(cur, dCur, target)
}

// GreedyGuard is the walk's hop bound, identical to Route's: a query
// may take at most 2·N improving steps.
func (s *Snapshot) GreedyGuard() int { return 2 * s.keys.n }

// GreedyArrived reports whether a walk that stopped at distance d
// counts as delivered — d is minimal over the (mask-live) population.
func (s *Snapshot) GreedyArrived(d float64, target keyspace.Key) bool {
	return s.arrivedAt(d, target)
}

// Delegated reports whether this snapshot routes through a retained
// source overlay (Chord, Pastry — directional rules the captured CSR
// cannot express greedily). Delegated snapshots route only through
// NewRouter; the stepwise Greedy API refuses them.
func (s *Snapshot) Delegated() bool { return s.src != nil }

// arrived reports whether a route that stopped at distance d reached a
// minimal-distance node for the target — minimal over the mask-live
// population when the snapshot carries a fault mask (the responsible
// node itself may be dead; stopping at its closest live neighbour is
// then a correct delivery).
func (r *SnapshotRouter) arrived(d float64, target keyspace.Key) bool {
	return r.s.arrivedAt(d, target)
}

// arrivedAt is arrived's snapshot-level body, shared with the stepwise
// Greedy API.
func (s *Snapshot) arrivedAt(d float64, target keyspace.Key) bool {
	nearest := s.rank.Nearest(s.topo, target)
	if nearest < 0 {
		return false
	}
	if s.faults == nil || !s.faults.dead[s.rank.SlotAt(nearest)] {
		return d <= s.topo.Distance(s.rank.KeyAt(nearest), target)
	}
	best, ok := s.nearestLiveDistance(target, nearest)
	if !ok {
		return false
	}
	return d <= best
}

// nearestLiveDistance returns the distance from target to the closest
// mask-live node, scanning rank-outward from the nearest rank. Each
// directional scan may stop at its first live hit: arc displacement
// grows monotonically per direction, and the true nearest live node is
// the closer of the two first hits. Reports false when every node is
// masked.
func (s *Snapshot) nearestLiveDistance(target keyspace.Key, start int) (float64, bool) {
	n := s.rank.n
	dead := s.faults.dead
	if s.faults.n >= n {
		return 0, false
	}
	best := s.topo.MaxDistance() + 1
	found := false
	// Ascending-key direction (clockwise on the ring).
	for step, i := 0, start; step < n; step++ {
		if !dead[s.rank.SlotAt(i)] {
			if d := s.topo.Distance(s.rank.KeyAt(i), target); d < best {
				best, found = d, true
			}
			break
		}
		i++
		if i == n {
			if s.topo != keyspace.Ring {
				break
			}
			i = 0
		}
	}
	// Descending-key direction (counter-clockwise).
	for step, i := 0, start; step < n; step++ {
		if !dead[s.rank.SlotAt(i)] {
			if d := s.topo.Distance(s.rank.KeyAt(i), target); d < best {
				best, found = d, true
			}
			break
		}
		i--
		if i < 0 {
			if s.topo != keyspace.Ring {
				break
			}
			i = n - 1
		}
	}
	return best, found
}
