package overlaynet

import (
	"fmt"
	"math"

	"smallworld/dist"
	"smallworld/keyspace"
)

// Options parameterises Build. One struct covers every registered
// topology; fields a topology does not use are ignored by its builder,
// and every zero value means "the topology's documented default", so
// Options{N: n, Seed: s} builds a sensible instance of anything.
type Options struct {
	// N is the number of nodes. Required, >= 2 for every topology.
	N int
	// Seed drives all randomness: the same (name, Options) pair always
	// builds an identical overlay.
	Seed uint64
	// Dist is the identifier density f. Nil means uniform. Used by the
	// small-world family, P-Grid, Symphony/Mercury, CAN and the
	// protocol simulation.
	Dist dist.Distribution
	// Topology selects the key-space geometry for the small-world
	// family: the zero value is keyspace.Line (the theorems' interval
	// setting, matching smallworld.Config); pass keyspace.Ring for the
	// wrap-around geometry. Ring-native overlays ignore it.
	Topology keyspace.Topology
	// Degree is the number of long-range links per node. 0 means the
	// topology default: ceil(log2 N) for the small-world models and
	// Symphony/Mercury, 4 for Kleinberg, lattice degree 8 for
	// Watts–Strogatz.
	Degree int
	// Exponent is the link-selection exponent r of the small-world
	// family. 0 means 1, the harmonic (routing-efficient) choice.
	Exponent float64
	// Sampler selects the small-world link sampler: "protocol" (default)
	// or "exact".
	Sampler string
	// RewireP is the Watts–Strogatz rewiring probability. 0 means 0.1,
	// the classic small-world regime.
	RewireP float64
	// Dims is CAN's dimensionality. 0 means 2.
	Dims int
	// BitsPerDigit is Pastry's digit width b. 0 means 4.
	BitsPerDigit uint
	// Oracle gives protocol-simulation peers exact knowledge of f and N
	// (the paper's "straightforward" case). False means peers estimate
	// both from random walks.
	Oracle bool
	// Workers bounds construction parallelism where builds are parallel
	// (the small-world family). 0 means GOMAXPROCS.
	Workers int
}

// validate rejects option values no builder can accept.
func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("overlaynet: N = %d, need at least 2 nodes", o.N)
	}
	if o.Degree < 0 {
		return fmt.Errorf("overlaynet: negative degree %d", o.Degree)
	}
	if math.IsNaN(o.Exponent) || math.IsInf(o.Exponent, 0) || o.Exponent < 0 {
		return fmt.Errorf("overlaynet: exponent %v must be finite and non-negative", o.Exponent)
	}
	if math.IsNaN(o.RewireP) || o.RewireP < 0 || o.RewireP > 1 {
		return fmt.Errorf("overlaynet: rewire probability %v outside [0,1]", o.RewireP)
	}
	return nil
}

// dist returns the configured identifier density, defaulting to uniform.
func (o Options) dist() dist.Distribution {
	if o.Dist == nil {
		return dist.Uniform{}
	}
	return o.Dist
}
