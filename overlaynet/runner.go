package overlaynet

import (
	"context"
	"math"
	"runtime"
	"sync"

	"smallworld/keyspace"
	"smallworld/xrand"
)

// Query is one routing request: from node Src to the peer responsible
// for Target.
type Query struct {
	Src    int
	Target keyspace.Key
}

// Batch is the result of one QueryRunner.Run. Its slices alias the
// runner's reusable scratch: they are valid until the next Run on the
// same runner, and callers that need them longer must copy.
type Batch struct {
	// Hops holds the per-query hop counts, indexed like the query slice.
	// Queries that failed to arrive record the runner's fail-hops
	// sentinel (NaN by default; see FailHops).
	Hops []float64
	// Arrived counts the queries whose route terminated at a correct
	// destination.
	Arrived int
	// Executed counts the queries actually routed — less than the batch
	// size only when the context was cancelled mid-run.
	Executed int
}

// Option configures a QueryRunner.
type Option func(*QueryRunner)

// Workers bounds routing parallelism. The default is GOMAXPROCS; with
// exactly one worker the runner routes inline on the calling goroutine,
// which keeps the steady state completely allocation-free.
func Workers(n int) Option {
	return func(qr *QueryRunner) {
		if n > 0 {
			qr.workers = n
		}
	}
}

// FailHops sets the hop value recorded for queries that do not arrive
// (default NaN). Experiments penalising failures pass the network size,
// making any regression obvious in every aggregate.
func FailHops(h float64) Option {
	return func(qr *QueryRunner) { qr.failHops = h }
}

// cancelCheckEvery is how many queries a worker routes between context
// checks: frequent enough that cancellation is prompt, rare enough that
// the check never shows up in a profile.
const cancelCheckEvery = 64

// SnapshotSource is anything that can hand out the latest immutable
// snapshot of an overlay — a *Publisher in practice. A QueryRunner
// whose overlay implements it switches into serving mode.
type SnapshotSource interface {
	Snapshot() *Snapshot
}

// QueryRunner routes query batches over one overlay with bounded
// parallelism and cooperative cancellation. It amortises all scratch
// state — one Router per worker plus the result buffers — across Run
// calls, so the steady state allocates nothing per query (and, with
// Workers(1), nothing per batch either). A QueryRunner is not safe for
// concurrent use; create one per experiment loop.
//
// Serving mode: when the overlay implements SnapshotSource (a
// Publisher does), each Run pins ONE snapshot for the whole batch and
// rebinds every worker's SnapshotRouter to it — all queries of a batch
// observe the same epoch, routing stays lock-free against live churn,
// and the rebind is a pointer assignment, so the steady state remains
// allocation-free per query.
type QueryRunner struct {
	ov       Overlay
	src      SnapshotSource // non-nil switches Run into serving mode
	workers  int
	failHops float64

	routers []Router
	hops    []float64
	cells   []workerCell // per-worker counters, one padded cell each
}

// workerCell is one worker's batch counters, padded so adjacent
// workers' cells never share a cache line. The previous layout — two
// parallel []int arrays — packed eight workers' counters into one
// 64-byte line, so every worker's final write (and the spurious
// coherence traffic the hardware prefetcher adds on the adjacent line)
// invalidated every other worker's copy; at 4+ workers that coherence
// ping-pong was the first thing to break linear scaling. 128 bytes
// covers the adjacent-line prefetch pairing on current x86 cores.
type workerCell struct {
	arrived int
	done    int
	_       [112]byte
}

// NewQueryRunner returns a runner over ov with the given options
// applied. Overlays that implement SnapshotSource are served in
// batch-pinned snapshot mode (see QueryRunner).
func NewQueryRunner(ov Overlay, opts ...Option) *QueryRunner {
	qr := &QueryRunner{ov: ov, workers: runtime.GOMAXPROCS(0), failHops: math.NaN()}
	if src, ok := ov.(SnapshotSource); ok {
		qr.src = src
	}
	for _, opt := range opts {
		opt(qr)
	}
	return qr
}

// Run routes every query in qs and returns the per-query hop counts.
// Queries are partitioned into one contiguous chunk per worker; each
// worker routes its chunk through its own Router, checking ctx every
// few dozen queries. On cancellation Run returns the context error and
// a batch whose Executed count reflects the work actually done (the
// Hops entries of unexecuted queries are zero).
func (qr *QueryRunner) Run(ctx context.Context, qs []Query) (Batch, error) {
	n := len(qs)
	if cap(qr.hops) < n {
		qr.hops = make([]float64, n)
	}
	qr.hops = qr.hops[:n]
	clear(qr.hops) // a cancelled run must not leak the previous batch's hops
	workers := qr.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if qr.src != nil {
		// Serving mode: pin one snapshot for the whole batch and rebind
		// every worker router to it (a pointer assignment — no
		// allocation, no lock on the read path).
		snap := qr.src.Snapshot()
		for len(qr.routers) < workers {
			qr.routers = append(qr.routers, snap.NewRouter())
		}
		for w := 0; w < workers; w++ {
			qr.routers[w].(*SnapshotRouter).Rebind(snap)
		}
	}
	for len(qr.routers) < workers {
		qr.routers = append(qr.routers, qr.ov.NewRouter())
	}
	if len(qr.cells) < workers {
		qr.cells = make([]workerCell, workers)
	}
	for w := 0; w < workers; w++ {
		qr.cells[w] = workerCell{}
	}

	if workers == 1 {
		qr.runChunk(ctx, qs, 0, n, 0)
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi, w int) {
				defer wg.Done()
				qr.runChunk(ctx, qs, lo, hi, w)
			}(lo, hi, w)
		}
		wg.Wait()
	}

	batch := Batch{Hops: qr.hops}
	for w := 0; w < workers; w++ {
		batch.Arrived += qr.cells[w].arrived
		batch.Executed += qr.cells[w].done
	}
	if err := ctx.Err(); err != nil {
		return batch, err
	}
	return batch, nil
}

// runChunk routes qs[lo:hi] on worker w's router.
func (qr *QueryRunner) runChunk(ctx context.Context, qs []Query, lo, hi, w int) {
	router := qr.routers[w]
	arrived, done := 0, 0
	for i := lo; i < hi; i++ {
		if done%cancelCheckEvery == 0 && ctx.Err() != nil {
			break
		}
		res := router.Route(qs[i].Src, qs[i].Target)
		if res.Arrived {
			arrived++
			qr.hops[i] = float64(res.Hops)
		} else {
			qr.hops[i] = qr.failHops
		}
		done++
	}
	qr.cells[w].arrived = arrived
	qr.cells[w].done = done
}

// RandomPairs returns count node-to-node queries over ov, drawn
// deterministically from seed: uniformly random source and destination
// nodes, the destination's identifier as the target. The draw order
// (source then destination, one pair per query) is part of the format:
// experiment tables depend on it staying stable across releases.
func RandomPairs(ov Overlay, seed uint64, count int) []Query {
	rng := xrand.New(seed)
	qs := make([]Query, count)
	n := ov.N()
	for i := range qs {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		qs[i] = Query{Src: src, Target: ov.Key(dst)}
	}
	return qs
}
