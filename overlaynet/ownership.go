package overlaynet

import (
	"smallworld/keyspace"
)

// Ownership: which node is responsible for which keys. The math itself
// lives in keyspace.Cell/Owner — the single definition shared with the
// small-world Network and the store's replica placement — and this file
// exposes it over snapshots plus the typed churn events that let a data
// plane (the store package) follow ownership as membership changes.

// OwnedRange returns the responsibility region of slot u in snapshot s:
// the Voronoi cell of u's identifier over the snapshot's population,
// under the snapshot's topology. Cells tile the key space exactly once
// (see keyspace.Cell), so a key is owned by exactly one slot of any
// given snapshot. An out-of-range slot yields the empty interval.
func OwnedRange(s *Snapshot, u int) keyspace.Interval {
	if s == nil || u < 0 || u >= s.keys.n {
		return keyspace.Interval{}
	}
	return keyspace.Cell(s.topo, s.SortedKeys(), s.rankOf(u))
}

// rankOf returns slot u's position in the ascending rank index. Binary
// search lands on the first rank holding u's identifier; duplicate
// identifiers (possible only transiently) are resolved by scanning the
// equal run for the slot itself.
func (s *Snapshot) rankOf(u int) int {
	k := s.keys.At(u)
	for i := s.rank.succIdx(k); i < s.rank.n; i++ {
		if int(s.rank.SlotAt(i)) == u {
			return i
		}
		if s.rank.KeyAt(i) != k {
			break
		}
	}
	return -1
}

// SortedKeys returns the snapshot's identifiers in ascending key order —
// the population the ownership math runs over. Read-only. Like Keys,
// the flat Points is materialized from the chunked rank index on first
// call and cached for the snapshot's lifetime.
func (s *Snapshot) SortedKeys() keyspace.Points {
	if p := s.flatSorted.Load(); p != nil {
		return *p
	}
	flat := s.rank.materializeKeys()
	s.flatSorted.Store(&flat)
	return flat
}

// OwnershipChange is one typed transfer of responsibility, emitted by
// dynamic overlays that implement OwnershipReporter. A membership event
// moves key ranges between the node and its rank neighbours:
//
//   - Join: the newcomer steals Range from Peer (the flank that owned
//     it before). A join between two live flanks emits two changes, one
//     per donor; Joined is true and Node is the newcomer's identifier.
//   - Leave: the leaver's cell is inherited by its flanks. Joined is
//     false, Node is the leaver's identifier, and Peer is the inheritor
//     that now owns Range.
//
// Ranges are half-open intervals in the same convention as
// keyspace.Cell; the changes of one membership event are disjoint and
// their union is exactly the cell that changed hands. Nodes are named
// by identifier, not slot index: slot indices are not stable across
// membership events (the incremental overlay renames the last slot on
// leave), identifiers are.
type OwnershipChange struct {
	// Joined distinguishes a join (Node acquired Range from Peer) from
	// a leave (Peer inherited Range from Node).
	Joined bool
	// Node is the identifier of the node that joined or left.
	Node keyspace.Key
	// Peer is the other party: the donor flank on join, the inheriting
	// flank on leave.
	Peer keyspace.Key
	// Range is the half-open key interval that changed hands.
	Range keyspace.Interval
}

// OwnershipReporter is implemented by dynamic overlays that can narrate
// their membership events as typed ownership transfers. The watcher is
// invoked synchronously inside Join/Leave, after the overlay's own
// state reflects the event; it must not call back into the overlay.
// At most one watcher is installed — a second call replaces the first;
// nil uninstalls.
type OwnershipReporter interface {
	SetOwnershipWatcher(func(OwnershipChange))
}
