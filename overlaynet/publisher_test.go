package overlaynet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/xrand"
)

func newTestPublisher(t *testing.T, n int, opts ...PublisherOption) *Publisher {
	t.Helper()
	dyn, err := NewIncremental(context.Background(), "smallworld-skewed", Options{
		N: n, Seed: 11, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// checkSnapshotIntact verifies a snapshot is internally consistent — no
// torn view: every array agrees on N, the rank index is a sorted
// permutation, and every adjacency target is in range.
func checkSnapshotIntact(t *testing.T, s *Snapshot) {
	t.Helper()
	n := s.keys.n
	if s.csr.N() != n || s.rank.n != n {
		t.Fatalf("torn snapshot: keys %d, csr %d, rank %d",
			n, s.csr.N(), s.rank.n)
	}
	byKey := s.rank.materializeKeys()
	order := s.rank.materializeSlots()
	seen := make(map[int32]bool, n)
	for rank, id := range order {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatalf("rank index corrupt at %d: slot %d", rank, id)
		}
		seen[id] = true
		if s.keys.At(int(id)) != byKey[rank] {
			t.Fatalf("rank %d: byKey %v != keys[%d] %v", rank, byKey[rank], id, s.keys.At(int(id)))
		}
		if rank > 0 && byKey[rank] < byKey[rank-1] {
			t.Fatalf("rank index not sorted at %d", rank)
		}
		if s.rank.KeyAt(rank) != byKey[rank] || s.rank.SlotAt(rank) != id {
			t.Fatalf("rank view disagrees with its own materialization at %d", rank)
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range s.Neighbors(u) {
			if v < 0 || int(v) >= n {
				t.Fatalf("node %d: neighbour %d out of range [0,%d)", u, v, n)
			}
		}
	}
}

func TestPublisherFirstEpochMatchesOverlay(t *testing.T) {
	pub := newTestPublisher(t, 256)
	snap := pub.Snapshot()
	if snap.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", snap.Epoch())
	}
	checkSnapshotIntact(t, snap)
	// The snapshot must be bit-identical to the wrapped overlay's state.
	dyn := pub.dyn
	if snap.N() != dyn.N() {
		t.Fatalf("snapshot N %d != overlay N %d", snap.N(), dyn.N())
	}
	for u := 0; u < snap.N(); u++ {
		if snap.Key(u) != dyn.Key(u) {
			t.Fatalf("key mismatch at %d", u)
		}
		row, live := snap.Neighbors(u), dyn.Neighbors(u)
		if len(row) != len(live) {
			t.Fatalf("row %d: %d vs %d targets", u, len(row), len(live))
		}
		for i := range row {
			if row[i] != live[i] {
				t.Fatalf("row %d differs at %d", u, i)
			}
		}
	}
	// Routing through the snapshot agrees with the live overlay router.
	sr := snap.NewRouter()
	lr := dyn.NewRouter()
	rng := xrand.New(5)
	for i := 0; i < 500; i++ {
		src := rng.Intn(snap.N())
		target := snap.Key(rng.Intn(snap.N()))
		a, b := sr.Route(src, target), lr.Route(src, target)
		if a.Dest != b.Dest || a.Hops != b.Hops || a.Arrived != b.Arrived {
			t.Fatalf("route %d->%v: snapshot %+v vs live %+v", src, target, a, b)
		}
	}
}

func TestPublisherEpochBoundary(t *testing.T) {
	ctx := context.Background()
	pub := newTestPublisher(t, 64, PublishEvery(8))
	if pub.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", pub.Epoch())
	}
	old := pub.Snapshot()
	for i := 0; i < 7; i++ {
		if err := pub.Join(ctx); err != nil {
			t.Fatal(err)
		}
		if pub.Snapshot() != old {
			t.Fatalf("snapshot republished before the boundary (event %d)", i+1)
		}
	}
	if err := pub.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.Epoch() != 2 {
		t.Fatalf("epoch after 8 events = %d, want 2", pub.Epoch())
	}
	if pub.Snapshot().N() != 64+8 {
		t.Fatalf("published N = %d, want 72", pub.Snapshot().N())
	}
	// The old snapshot is untouched by the new epoch: still intact,
	// still at the old population.
	checkSnapshotIntact(t, old)
	if old.N() != 64 {
		t.Fatalf("old snapshot N changed to %d", old.N())
	}
	// Publish forces a boundary mid-cycle.
	if err := pub.Leave(ctx, 0); err != nil {
		t.Fatal(err)
	}
	forced := pub.Publish()
	if forced.Epoch() != 3 || forced.N() != 64+8-1 {
		t.Fatalf("forced publish: epoch %d N %d", forced.Epoch(), forced.N())
	}
}

// TestPublisherConcurrentServing is the contract test the tentpole is
// about: readers route lock-free against published snapshots while the
// writer applies churn. Run under -race this proves the read path is
// synchronisation-free and tear-free.
func TestPublisherConcurrentServing(t *testing.T) {
	ctx := context.Background()
	pub := newTestPublisher(t, 512, PublishEvery(16))
	const readers = 4
	var stop atomic.Bool
	var routed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			snap := pub.Snapshot()
			router := snap.NewRouter().(*SnapshotRouter)
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					src := rng.Intn(snap.N())
					res := router.Route(src, keyspace.Key(rng.Float64()))
					if !res.Arrived {
						// Cannot happen: src and snapshot share an epoch
						// and neighbour edges are intact.
						t.Errorf("query failed at epoch %d", snap.Epoch())
						return
					}
					routed.Add(1)
				}
				snap = pub.Snapshot()
				router.Rebind(snap)
			}
		}(uint64(w) + 100)
	}
	rng := xrand.New(3)
	for i := 0; i < 400; i++ {
		var err error
		if rng.Bool(0.5) {
			err = pub.Join(ctx)
		} else if n := pub.LiveN(); n > 8 {
			err = pub.Leave(ctx, rng.Intn(n))
		}
		if err != nil {
			t.Errorf("churn event %d: %v", i, err)
			break
		}
	}
	// On a single-proc scheduler the writer loop can finish before any
	// reader ran; keep serving until every reader demonstrably routed
	// against the final epochs.
	for deadline := time.Now().Add(5 * time.Second); routed.Load() < readers*64; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if routed.Load() == 0 {
		t.Fatal("no queries routed")
	}
	checkSnapshotIntact(t, pub.Snapshot())
	if pub.Epoch() < 2 {
		t.Fatalf("epoch %d after 400 events with boundary 16", pub.Epoch())
	}
}

// TestQueryRunnerServingMode pins one snapshot per batch: a batch
// launched against epoch e routes every query on epoch e even when the
// publisher advances mid-batch.
func TestQueryRunnerServingMode(t *testing.T) {
	ctx := context.Background()
	pub := newTestPublisher(t, 256, PublishEvery(1))
	qr := NewQueryRunner(pub, Workers(2))
	qs := RandomPairs(pub, 7, 2000)
	batch, err := qr.Run(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Arrived != len(qs) {
		t.Fatalf("%d/%d arrived on a healthy snapshot", batch.Arrived, len(qs))
	}
	// Workers must hold SnapshotRouters pinned to one epoch.
	pinned := qr.routers[0].(*SnapshotRouter).Pinned()
	for w := range qr.routers {
		if qr.routers[w].(*SnapshotRouter).Pinned() != pinned {
			t.Fatal("workers pinned to different snapshots within one batch")
		}
	}
	// Churn past the old population, then rerun: the runner re-pins to
	// the newest epoch and keeps serving.
	for i := 0; i < 32; i++ {
		if err := pub.Join(ctx); err != nil {
			t.Fatal(err)
		}
	}
	batch, err = qr.Run(ctx, RandomPairs(pub, 8, 500))
	if err != nil {
		t.Fatal(err)
	}
	if qr.routers[0].(*SnapshotRouter).Pinned() == pinned {
		t.Fatal("batch after churn still pinned to the old epoch")
	}
	if batch.Arrived != 500 {
		t.Fatalf("%d/500 arrived after re-pin", batch.Arrived)
	}
}

// TestSnapshotRouterStaleSource: a source index beyond the pinned
// snapshot's population fails cleanly instead of routing from an
// arbitrary slot.
func TestSnapshotRouterStaleSource(t *testing.T) {
	pub := newTestPublisher(t, 64)
	snap := pub.Snapshot()
	r := snap.NewRouter()
	res := r.Route(snap.N()+3, 0.5)
	if res.Arrived || res.Dest != -1 || res.Hops != 0 {
		t.Fatalf("stale source routed: %+v", res)
	}
}

// TestNewSnapshotGenericCapture covers the row-by-row fallback for
// overlays without a Snapshotter fast path (here: chord, ring-native).
func TestNewSnapshotGenericCapture(t *testing.T) {
	ov, err := Build(context.Background(), "chord", Options{N: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshot(ov)
	checkSnapshotIntact(t, snap)
	if snap.Topology() != keyspace.Ring {
		t.Fatalf("generic capture topology = %v, want ring", snap.Topology())
	}
	if snap.Kind() != ov.Kind() || snap.N() != ov.N() {
		t.Fatalf("capture mismatch: %s/%d vs %s/%d", snap.Kind(), snap.N(), ov.Kind(), ov.N())
	}
	for u := 0; u < snap.N(); u++ {
		row, live := snap.Neighbors(u), ov.Neighbors(u)
		if len(row) != len(live) {
			t.Fatalf("row %d: %d vs %d", u, len(row), len(live))
		}
		for i := range row {
			if row[i] != live[i] {
				t.Fatalf("row %d differs at %d", u, i)
			}
		}
	}
	// Responsible agrees with the rank index.
	rng := xrand.New(2)
	for i := 0; i < 200; i++ {
		k := keyspace.Key(rng.Float64())
		resp := snap.Responsible(k)
		best, bestD := -1, 2.0
		for u := 0; u < snap.N(); u++ {
			if d := keyspace.Ring.Distance(snap.Key(u), k); d < bestD {
				best, bestD = u, d
			}
		}
		if keyspace.Ring.Distance(snap.Key(resp), k) != bestD {
			t.Fatalf("Responsible(%v) = %d (d=%v), nearest %d (d=%v)",
				k, resp, keyspace.Ring.Distance(snap.Key(resp), k), best, bestD)
		}
	}
}

// TestPublisherOverDirectionalDHT: a rebuild-wrapped Chord overlay
// routes with Chord's own clockwise-finger semantics through the
// snapshot's retained generation — the generic distance-greedy CSR
// router would strand every counter-clockwise query. Old epochs keep
// routing their own (replaced, immutable) generation after churn.
func TestPublisherOverDirectionalDHT(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewRebuild(ctx, "chord", Options{N: 128, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn, PublishEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	old := pub.Snapshot()
	router := old.NewRouter()
	rng := xrand.New(8)
	for i := 0; i < 300; i++ {
		res := router.Route(rng.Intn(old.N()), old.Key(rng.Intn(old.N())))
		if !res.Arrived {
			t.Fatalf("chord snapshot query %d stranded: %+v", i, res)
		}
	}
	for i := 0; i < 4; i++ {
		if err := pub.Join(ctx); err != nil {
			t.Fatal(err)
		}
	}
	fresh := pub.Snapshot()
	if fresh == old || fresh.N() != 132 {
		t.Fatalf("epoch did not advance: N=%d", fresh.N())
	}
	// Both epochs remain routable: the old one on its retained
	// generation, the new one after a Rebind.
	if res := router.Route(0, old.Key(64)); !res.Arrived {
		t.Fatal("old epoch stopped routing after churn")
	}
	router.(*SnapshotRouter).Rebind(fresh)
	arrived := 0
	for i := 0; i < 300; i++ {
		if router.Route(rng.Intn(fresh.N()), fresh.Key(rng.Intn(fresh.N()))).Arrived {
			arrived++
		}
	}
	if arrived != 300 {
		t.Fatalf("%d/300 arrived on the new epoch", arrived)
	}
	if fresh.Kind() != "rebuild:chord" {
		t.Fatalf("kind = %q", fresh.Kind())
	}
}

// TestIncrementalCaptureSharesCompactedCSR: capturing right at the
// compaction boundary shares the base CSR instead of copying it.
func TestIncrementalCaptureSharesCompactedCSR(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-skewed", Options{
		N: 128, Seed: 4, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	inc := dyn.(*incrementalOverlay)
	snap := inc.CaptureSnapshot()
	if snap.csr != inc.csr {
		t.Fatal("capture with empty delta copied the CSR")
	}
	// Dirty the delta, capture again: the fold must leave the previous
	// snapshot's CSR untouched.
	if err := dyn.Join(ctx); err != nil {
		t.Fatal(err)
	}
	snap2 := inc.CaptureSnapshot()
	checkSnapshotIntact(t, snap2)
	checkSnapshotIntact(t, snap)
	if snap2.N() != 129 || snap.N() != 128 {
		t.Fatalf("capture Ns: %d then %d", snap.N(), snap2.N())
	}
}
