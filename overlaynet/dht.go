package overlaynet

import (
	"context"

	"smallworld"
	"smallworld/internal/dht/can"
	"smallworld/internal/dht/chord"
	"smallworld/internal/dht/pastry"
	"smallworld/internal/dht/pgrid"
	"smallworld/internal/dht/symphony"
	"smallworld/keyspace"
)

func init() {
	Register(Info{
		Name:        "chord",
		Description: "Chord: finger tables over a hashed 64-bit ring, closest-preceding-finger lookups",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			return wrapChord(chord.Build(opts.N, opts.Seed)), nil
		},
	})
	Register(Info{
		Name:        "pastry",
		Description: "Pastry: prefix routing over base-2^b digits with a leaf set (b default 4)",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			nw, err := pastry.Build(pastry.Config{
				N: opts.N, BitsPerDigit: opts.BitsPerDigit, Seed: opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			return wrapPastry(nw), nil
		},
	})
	Register(Info{
		Name:        "pgrid",
		Description: "P-Grid: binary trie over [0,1) with randomized sibling references; follows the key skew",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			nw, err := pgrid.Build(pgrid.Config{N: opts.N, Dist: opts.Dist, Seed: opts.Seed})
			if err != nil {
				return nil, err
			}
			return wrapPGrid(nw), nil
		},
	})
	Register(Info{
		Name:        "symphony",
		Description: "Symphony: harmonic key-space long links on a ring (Degree = k, default log2 N)",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			return buildSymphony(opts, symphony.Classic, "symphony")
		},
	})
	Register(Info{
		Name:        "mercury",
		Description: "Mercury: Symphony's draw in rank space — the sampled approximation of Model 2",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			return buildSymphony(opts, symphony.Mercury, "mercury")
		},
	})
	Register(Info{
		Name:        "can",
		Description: "CAN: d-dimensional zone partition (d default 2); hop counts degrade under key skew",
		Build: func(ctx context.Context, opts Options) (Overlay, error) {
			nw, err := can.Build(can.Config{
				N: opts.N, Dims: opts.Dims, Dist: opts.Dist, Seed: opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			return wrapCAN(nw), nil
		},
	})
}

// ringOverlay is the shared shape of the DHT adapters: a precomputed
// projection of node identifiers onto [0,1) and a precomputed
// out-neighbour table, with routing delegated per adapter.
type ringOverlay struct {
	kind string
	keys []keyspace.Key
	out  [][]int32
}

func (o *ringOverlay) Kind() string            { return o.kind }
func (o *ringOverlay) N() int                  { return len(o.keys) }
func (o *ringOverlay) Key(u int) keyspace.Key  { return o.keys[u] }
func (o *ringOverlay) Keys() []keyspace.Key    { return o.keys }
func (o *ringOverlay) Neighbors(u int) []int32 { return o.out[u] }

// --- Chord ---

type chordOverlay struct {
	ringOverlay
	nw *chord.Network
}

func wrapChord(nw *chord.Network) *chordOverlay {
	n := nw.N()
	o := &chordOverlay{ringOverlay{kind: "chord", keys: make([]keyspace.Key, n), out: make([][]int32, n)}, nw}
	for u := 0; u < n; u++ {
		o.keys[u] = u64ToKey(nw.ID(u))
		o.out[u] = nw.Links(u)
	}
	return o
}

func (o *chordOverlay) Stats() Stats      { return statsOf(o) }
func (o *chordOverlay) NewRouter() Router { return chordRouter{nw: o.nw} }

type chordRouter struct{ nw *chord.Network }

func (r chordRouter) Route(src int, target keyspace.Key) Result {
	x := keyToU64(target)
	hops, owner := r.nw.Lookup(src, x)
	return Result{Hops: hops, Dest: owner, Arrived: owner == r.nw.Owner(x)}
}

// --- Pastry ---

type pastryOverlay struct {
	ringOverlay
	nw *pastry.Network
}

func wrapPastry(nw *pastry.Network) *pastryOverlay {
	n := nw.N()
	o := &pastryOverlay{ringOverlay{kind: "pastry", keys: make([]keyspace.Key, n), out: make([][]int32, n)}, nw}
	for u := 0; u < n; u++ {
		o.keys[u] = u64ToKey(nw.ID(u))
		o.out[u] = nw.Links(u)
	}
	return o
}

func (o *pastryOverlay) Stats() Stats      { return statsOf(o) }
func (o *pastryOverlay) NewRouter() Router { return pastryRouter{nw: o.nw} }

type pastryRouter struct{ nw *pastry.Network }

func (r pastryRouter) Route(src int, target keyspace.Key) Result {
	x := keyToU64(target)
	hops, owner := r.nw.Lookup(src, x)
	return Result{Hops: hops, Dest: owner, Arrived: owner == r.nw.Owner(x)}
}

// --- P-Grid ---

type pgridOverlay struct {
	ringOverlay
	nw *pgrid.Network
}

func wrapPGrid(nw *pgrid.Network) *pgridOverlay {
	n := nw.N()
	o := &pgridOverlay{ringOverlay{kind: "pgrid", keys: make([]keyspace.Key, n), out: make([][]int32, n)}, nw}
	for u := 0; u < n; u++ {
		o.keys[u] = nw.Key(u)
		o.out[u] = nw.Links(u)
	}
	return o
}

func (o *pgridOverlay) Stats() Stats      { return statsOf(o) }
func (o *pgridOverlay) NewRouter() Router { return pgridRouter{nw: o.nw} }

type pgridRouter struct{ nw *pgrid.Network }

func (r pgridRouter) Route(src int, target keyspace.Key) Result {
	hops, owner := r.nw.Lookup(src, target)
	return Result{Hops: hops, Dest: owner, Arrived: owner == r.nw.Owner(target)}
}

// --- Symphony / Mercury ---

type symphonyOverlay struct {
	ringOverlay
	nw *symphony.Network
}

func buildSymphony(opts Options, mode symphony.Mode, kind string) (Overlay, error) {
	k := opts.Degree
	if k == 0 {
		// The same logarithmic default the small-world models use, so
		// cross-topology comparisons start from state parity.
		k = smallworld.Log2Degree()(opts.N)
	}
	nw, err := symphony.Build(symphony.Config{
		N: opts.N, K: k, Mode: mode, Dist: opts.Dist, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return wrapSymphony(nw, kind), nil
}

func wrapSymphony(nw *symphony.Network, kind string) *symphonyOverlay {
	n := nw.N()
	o := &symphonyOverlay{ringOverlay{kind: kind, keys: make([]keyspace.Key, n), out: make([][]int32, n)}, nw}
	for u := 0; u < n; u++ {
		o.keys[u] = nw.Key(u)
		o.out[u] = nw.Links(u)
	}
	return o
}

func (o *symphonyOverlay) Stats() Stats      { return statsOf(o) }
func (o *symphonyOverlay) NewRouter() Router { return symphonyRouter{nw: o.nw} }

type symphonyRouter struct{ nw *symphony.Network }

func (r symphonyRouter) Route(src int, target keyspace.Key) Result {
	hops, last := r.nw.Lookup(src, target)
	// Greedy with the exact tie-break terminates at minimal ring
	// distance; confirm against the sorted-point owner.
	owner := r.nw.Owner(target)
	arrived := keyspace.Ring.Distance(r.nw.Key(last), target) <=
		keyspace.Ring.Distance(r.nw.Key(owner), target)
	return Result{Hops: hops, Dest: last, Arrived: arrived}
}

// --- CAN ---

type canOverlay struct {
	ringOverlay
	nw *can.Network
}

func wrapCAN(nw *can.Network) *canOverlay {
	n := nw.N()
	o := &canOverlay{ringOverlay{kind: "can", keys: make([]keyspace.Key, n), out: make([][]int32, n)}, nw}
	for u := 0; u < n; u++ {
		o.keys[u] = keyspace.Clamp(nw.Zone(u).Center(nw.Dims())[0])
		o.out[u] = nw.Links(u)
	}
	return o
}

func (o *canOverlay) Stats() Stats      { return statsOf(o) }
func (o *canOverlay) NewRouter() Router { return canRouter{nw: o.nw} }

type canRouter struct{ nw *can.Network }

// canProbeCoord fixes the secondary coordinates of key-line probes.
// Zone boundaries are dyadic rationals (recursive midpoint splits), so
// an irrational constant keeps the probe line off every boundary; the
// cube midline 0.5 would sit exactly on the first split seam and stall
// greedy forwarding on distance-zero ties.
const canProbeCoord = 0.6180339887498949 // 1/φ

// Route probes the key line of the cube: the target key becomes the
// first (skewed) coordinate and the remaining coordinates hold a fixed
// off-boundary constant, so one-dimensional key targets remain
// comparable across overlays.
func (r canRouter) Route(src int, target keyspace.Key) Result {
	var p can.Point
	p[0] = float64(target)
	for i := 1; i < r.nw.Dims(); i++ {
		p[i] = canProbeCoord
	}
	hops, owner := r.nw.Lookup(src, p)
	return Result{Hops: hops, Dest: owner, Arrived: closureContains(r.nw.Zone(owner), p, r.nw.Dims())}
}

// closureContains reports whether p lies in the closed zone [Lo, Hi].
// Zone.Contains is half-open, but probe targets derived from node keys
// (zone midpoints, which are dyadic) can land exactly on a seam between
// zones; greedy forwarding legitimately stops at distance zero on either
// side, and both closures are correct owners of the boundary point.
func closureContains(z can.Zone, p can.Point, dims int) bool {
	for i := 0; i < dims; i++ {
		if p[i] < z.Lo[i] || p[i] > z.Hi[i] {
			return false
		}
	}
	return true
}
