package overlaynet

import (
	"context"
	"testing"

	"smallworld"
	"smallworld/keyspace"
	"smallworld/xrand"
)

// The FailSet drift bug: marks were slot-indexed, but NewIncremental's
// leave path renames the last slot into the hole a departure opens, so
// a mark on the (renamed) last slot silently migrated onto a live
// node. These tests pin the identifier-keyed fix.

func buildChurnOverlay(t *testing.T, n int) Dynamic {
	t.Helper()
	dyn, err := NewIncremental(context.Background(), "smallworld-uniform", Options{N: n, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return dyn
}

// TestFailSetSurvivesSlotRename is the minimal drift reproducer: mark
// the LAST slot dead, make an earlier node leave (which renames the
// last slot into the hole), and check the mark followed the identifier
// instead of sticking to the now-reused slot id.
func TestFailSetSurvivesSlotRename(t *testing.T) {
	ctx := context.Background()
	dyn := buildChurnOverlay(t, 32)
	fs := smallworld.NewFailSetKeys(dyn.Keys(), xrand.New(1), 0)

	last := dyn.N() - 1
	deadKey := dyn.Key(last)
	fs.Fail(last)
	movedKey := deadKey // the identifier that will be renamed into the hole

	const hole = 3
	if dyn.Key(hole) == deadKey {
		t.Fatal("test setup: hole holds the marked identifier")
	}
	if err := dyn.Leave(ctx, hole); err != nil {
		t.Fatal(err)
	}
	fs.Sync(dyn.Keys())

	if got := fs.CountDead(); got != 1 {
		t.Fatalf("CountDead = %d after rename, want 1", got)
	}
	for u := 0; u < dyn.N(); u++ {
		wantDead := dyn.Key(u) == movedKey
		if fs.Dead(u) != wantDead {
			t.Errorf("slot %d (key %v): Dead = %v, want %v", u, dyn.Key(u), fs.Dead(u), wantDead)
		}
	}
}

// TestFailSetChurnInterleaving drives a random join/leave/fail/revive
// interleaving against a reference map keyed on identifiers, syncing
// after every membership event.
func TestFailSetChurnInterleaving(t *testing.T) {
	ctx := context.Background()
	dyn := buildChurnOverlay(t, 64)
	rng := xrand.New(7)
	fs := smallworld.NewFailSetKeys(dyn.Keys(), rng, 0.2)

	ref := make(map[keyspace.Key]bool)
	for u, k := range dyn.Keys() {
		if fs.Dead(u) {
			ref[k] = true
		}
	}

	check := func(step int) {
		t.Helper()
		n := dyn.N()
		count := 0
		for u := 0; u < n; u++ {
			want := ref[dyn.Key(u)]
			if fs.Dead(u) != want {
				t.Fatalf("step %d: slot %d (key %v): Dead = %v, want %v",
					step, u, dyn.Key(u), fs.Dead(u), want)
			}
			if want {
				count++
			}
		}
		if fs.CountDead() != count {
			t.Fatalf("step %d: CountDead = %d, want %d", step, fs.CountDead(), count)
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && dyn.N() < 96:
			if err := dyn.Join(ctx); err != nil {
				t.Fatal(err)
			}
			fs.Sync(dyn.Keys())
		case op == 1 && dyn.N() > 16:
			victim := rng.Intn(dyn.N())
			delete(ref, dyn.Key(victim)) // the departed identifier is forgotten
			if err := dyn.Leave(ctx, victim); err != nil {
				t.Fatal(err)
			}
			fs.Sync(dyn.Keys())
		case op == 2:
			u := rng.Intn(dyn.N())
			fs.Fail(u)
			ref[dyn.Key(u)] = true
		default:
			u := rng.Intn(dyn.N())
			fs.Revive(u)
			delete(ref, dyn.Key(u))
		}
		check(step)
	}
}

// TestFailSetSyncForgetsDeparted: a marked identifier that leaves the
// population must not resurrect a mark when the slot count shrinks and
// regrows.
func TestFailSetSyncForgetsDeparted(t *testing.T) {
	ctx := context.Background()
	dyn := buildChurnOverlay(t, 16)
	fs := smallworld.NewFailSetKeys(dyn.Keys(), xrand.New(3), 0)

	const victim = 5
	fs.Fail(victim)
	if err := dyn.Leave(ctx, victim); err != nil {
		t.Fatal(err)
	}
	fs.Sync(dyn.Keys())
	if fs.CountDead() != 0 {
		t.Fatalf("CountDead = %d after the marked node departed, want 0", fs.CountDead())
	}
	if err := dyn.Join(ctx); err != nil {
		t.Fatal(err)
	}
	fs.Sync(dyn.Keys())
	for u := 0; u < dyn.N(); u++ {
		if fs.Dead(u) {
			t.Fatalf("slot %d resurrected a departed mark", u)
		}
	}
}
