package overlaynet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"smallworld/keyspace"
	"smallworld/obs"
)

// Publisher serves an overlay while it churns: it wraps any Dynamic
// overlay and publishes immutable Snapshots through an atomic pointer —
// the RCU (read-copy-update) discipline. Readers load the current
// snapshot with one atomic pointer read and route against it lock-free
// for as long as they like; membership events apply on the writer side
// under a mutex and republish at every epoch boundary. No reader ever
// blocks a writer, no writer ever tears a reader's view, and a reader
// pinned to an old epoch simply serves a slightly stale — but
// internally consistent — picture of the overlay.
//
//	pub, _ := overlaynet.NewPublisher(dyn)
//	// any number of goroutines:
//	snap := pub.Snapshot()
//	router := snap.NewRouter()
//	res := router.Route(src, target)
//	// one writer (or several; the Publisher serialises them):
//	pub.Join(ctx)
//
// The epoch boundary defaults to every 64 membership events, matching
// NewIncremental's delta compaction: right after the incremental
// overlay folds its deltas into a fresh base CSR, capturing a snapshot
// is one keys/rank-index copy plus a shared pointer to that CSR.
// Between boundaries readers route against the previous epoch — the
// staleness any deployed overlay accepts in exchange for an
// uncontended read path. PublishEvery(1) trades that for per-event
// capture cost; Publish forces a boundary on demand.
//
// The Publisher itself implements Overlay by delegating every read to
// the current snapshot (so it drops into QueryRunner and the registry
// tooling), and Dynamic by delegating membership to the wrapped
// overlay. Mutator arguments refer to the wrapped overlay's LIVE
// state, which runs ahead of the published read surface by up to
// PublishEvery-1 events: Leave's node index must be drawn against
// LiveN, never against N()/Keys(). In particular, do NOT hand a
// Publisher to a driver that derives leave victims from the Overlay
// read surface — sim.Run does exactly that — or indices computed from
// a stale epoch will miss (error) or name the wrong live node. Drive
// the wrapped overlay directly and serve through the Publisher
// (sim.Serve's writer does), or churn through Join/Leave with indices
// from LiveN.
type Publisher struct {
	mu      sync.Mutex // serialises writers: Join, Leave, Publish
	dyn     Dynamic
	every   int
	pending int
	epoch   uint64

	faults     FaultPlane
	vantage    keyspace.Key
	hasVantage bool

	// Fault-mask reuse state. A published mask is immutable and may be
	// pinned by readers on arbitrarily old epochs, so it is never
	// recycled in place — instead publishLocked SHARES the previous
	// snapshot's mask object whenever nothing it depends on changed:
	// the plane's fault epoch, the vantage, and the key population
	// (checked by chunk-pointer identity of the snapshots' key spines —
	// chunks are immutable once shared, so pointer-equal spines imply
	// identical identifiers even when membership events bypassed the
	// Publisher's own mutators). maskVantage records the vantage the
	// last-built mask was derived from.
	maskVantage    keyspace.Key
	maskHasVantage bool

	obsReg    *obs.Registry
	obsTracer *obs.Tracer
	obsHint   obs.Hint

	cur atomic.Pointer[Snapshot]
}

// FaultPlane is the node-fault view a Publisher materialises into each
// snapshot it publishes: which identifiers are crashed, stamped with a
// reconfiguration epoch so a stale mask is distinguishable from a
// current one. netmodel.Model implements it. Both methods must be safe
// to call from the publisher's writer side concurrently with readers.
type FaultPlane interface {
	// Dead reports whether the node holding identifier k is crashed.
	Dead(k keyspace.Key) bool
	// FaultEpoch counts fault-plane reconfigurations.
	FaultEpoch() uint64
}

// ReachabilityPlane is optionally implemented by fault planes that
// also know pairwise reachability (partitions). netmodel.Model
// implements it.
type ReachabilityPlane interface {
	FaultPlane
	// Unreachable reports whether a message from the node holding
	// `from` can never reach the node holding `to`.
	Unreachable(from, to keyspace.Key) bool
}

// SetFaultPlane installs (or, with nil, removes) the fault plane and
// republishes so the current snapshot carries a fresh mask. Snapshots
// then skip dead candidates during routing with zero extra
// allocations. The mask is re-materialised at every publication; after
// reconfiguring the plane (a partition cut or heal), call Publish to
// propagate the new epoch immediately rather than waiting for the next
// membership boundary.
func (p *Publisher) SetFaultPlane(fp FaultPlane) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = fp
	p.publishLocked()
}

// SetVantage declares the identifier the publisher itself serves from.
// With a vantage and a ReachabilityPlane, published masks also cover
// nodes unreachable *from the vantage* — the far side of a partition —
// so a partitioned publisher serves exactly the component it can
// actually reach.
func (p *Publisher) SetVantage(k keyspace.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vantage, p.hasVantage = k, true
	p.publishLocked()
}

// PublisherOption configures a Publisher.
type PublisherOption func(*Publisher)

// PublishEvery sets the epoch boundary: a new snapshot is published
// after every k membership events (default 64, the incremental
// overlay's compaction interval). k = 1 publishes on every event.
func PublishEvery(k int) PublisherOption {
	return func(p *Publisher) {
		if k > 0 {
			p.every = k
		}
	}
}

// NewPublisher wraps dyn and publishes its first snapshot (epoch 1).
func NewPublisher(dyn Dynamic, opts ...PublisherOption) (*Publisher, error) {
	if dyn == nil {
		return nil, fmt.Errorf("overlaynet: nil dynamic overlay")
	}
	p := &Publisher{dyn: dyn, every: defaultCompactEvery}
	for _, opt := range opts {
		opt(p)
	}
	p.mu.Lock()
	p.publishLocked()
	p.mu.Unlock()
	return p, nil
}

// Snapshot returns the current epoch's snapshot: one atomic load, safe
// from any goroutine, never nil.
func (p *Publisher) Snapshot() *Snapshot { return p.cur.Load() }

// Epoch returns the current publication epoch.
func (p *Publisher) Epoch() uint64 { return p.Snapshot().epoch }

// Publish forces an epoch boundary: the wrapped overlay's current state
// is captured and published regardless of how many events are pending.
// It returns the new snapshot.
func (p *Publisher) Publish() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.publishLocked()
	return p.cur.Load()
}

// publishLocked captures and atomically swaps in a fresh snapshot.
// Callers hold p.mu.
func (p *Publisher) publishLocked() {
	p.epoch++
	s := NewSnapshot(p.dyn)
	s.epoch = p.epoch
	if p.faults != nil {
		s.faults = p.faultMaskLocked(s)
	}
	p.attachObsLocked(s)
	p.cur.Store(s)
	p.pending = 0
}

// faultMaskLocked returns the fault mask for a snapshot being
// published: the previous snapshot's mask object when every input it
// was derived from is unchanged (fault epoch, vantage, membership),
// a freshly built one otherwise. Sharing keeps the no-change publish
// path free of the O(N) mask allocation AND the O(N) plane scan;
// snapshots stay immutable because the shared object is never written
// after its first publication.
func (p *Publisher) faultMaskLocked(s *Snapshot) *snapFaults {
	if prev := p.cur.Load(); prev != nil && prev.faults != nil &&
		prev.faults.epoch == p.faults.FaultEpoch() &&
		p.maskVantage == p.vantage && p.maskHasVantage == p.hasVantage &&
		equalKeyViews(prev.keys, s.keys) {
		return prev.faults
	}
	f := buildFaultMask(s, p.faults, p.vantage, p.hasVantage)
	p.maskVantage, p.maskHasVantage = p.vantage, p.hasVantage
	return f
}

// equalKeyViews reports whether two key views hold identical contents,
// by chunk-pointer identity — O(N/chunk) compares, no key reads.
// Pointer-equal chunks cannot differ (chunks are copy-on-write and
// never mutated once shared); pointer-unequal chunks MAY still be
// equal, which only costs a conservative rebuild.
func equalKeyViews(a, b keyView) bool {
	if a.n != b.n || len(a.spine) != len(b.spine) {
		return false
	}
	for j := range a.spine {
		if a.spine[j] != b.spine[j] {
			return false
		}
	}
	return true
}

// afterEventLocked advances the event counter and publishes at the
// epoch boundary. Callers hold p.mu.
func (p *Publisher) afterEventLocked() {
	p.pending++
	if p.pending >= p.every {
		p.publishLocked()
	}
}

// SetOwnershipWatcher forwards the watcher to the wrapped overlay when
// it implements OwnershipReporter, so a store can follow ownership
// through a Publisher without reaching around it. A no-op for overlays
// that cannot narrate their churn (the store's snapshot diff sync is
// the backstop there). The watcher runs on the writer side, inside
// Join/Leave, while the Publisher's mutex is held — it must not call
// back into the Publisher's mutators (Snapshot reads are fine: the
// read path is lock-free).
func (p *Publisher) SetOwnershipWatcher(fn func(OwnershipChange)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.dyn.(OwnershipReporter); ok {
		r.SetOwnershipWatcher(fn)
	}
}

// LiveN returns the wrapped overlay's current population — ahead of
// Snapshot().N() by up to the unpublished pending events. Leave indices
// must be drawn against this value.
func (p *Publisher) LiveN() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dyn.N()
}

// Join implements Dynamic: one membership event on the wrapped overlay,
// then an epoch publication if the boundary was reached.
func (p *Publisher) Join(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.dyn.Join(ctx); err != nil {
		return err
	}
	p.afterEventLocked()
	return nil
}

// Leave implements Dynamic. The index u refers to the wrapped overlay's
// live state (see LiveN), not to a snapshot.
func (p *Publisher) Leave(ctx context.Context, u int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.dyn.Leave(ctx, u); err != nil {
		return err
	}
	p.afterEventLocked()
	return nil
}

// The Overlay read surface delegates to the current snapshot, so a
// Publisher can stand anywhere an Overlay can — every read is
// internally consistent with the epoch it loaded, though two
// consecutive calls may observe different epochs. Batch consumers that
// need one consistent view across many calls should pin a Snapshot
// (QueryRunner does this per batch automatically).

// Kind implements Overlay.
func (p *Publisher) Kind() string { return "publisher:" + p.Snapshot().kind }

// N implements Overlay: the published population.
func (p *Publisher) N() int { return p.Snapshot().N() }

// Key implements Overlay against the current snapshot.
func (p *Publisher) Key(u int) keyspace.Key { return p.Snapshot().Key(u) }

// Keys implements Overlay against the current snapshot.
func (p *Publisher) Keys() []keyspace.Key { return p.Snapshot().Keys() }

// Neighbors implements Overlay against the current snapshot.
func (p *Publisher) Neighbors(u int) []int32 { return p.Snapshot().Neighbors(u) }

// Stats implements Overlay against the current snapshot.
func (p *Publisher) Stats() Stats { return p.Snapshot().Stats() }

// NewRouter returns a router that re-pins itself to the latest epoch on
// every Route call (one atomic load per query, zero allocations).
// Loops that prefer batch-consistent routing should pin explicitly:
// pub.Snapshot().NewRouter() and Rebind at their own boundary.
func (p *Publisher) NewRouter() Router {
	return &publishedRouter{p: p}
}

type publishedRouter struct {
	p *Publisher
	r SnapshotRouter
}

func (r *publishedRouter) Route(src int, target keyspace.Key) Result {
	r.r.Rebind(r.p.Snapshot())
	return r.r.Route(src, target)
}
