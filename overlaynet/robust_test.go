package overlaynet

import (
	"context"
	"sync"
	"testing"

	"smallworld/keyspace"
	"smallworld/netmodel"
	"smallworld/xrand"
)

func robustSnapshot(t *testing.T, n int) *Snapshot {
	t.Helper()
	ov, err := Build(context.Background(), "smallworld-uniform", Options{N: n, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return NewSnapshot(ov)
}

func robustPairs(s *Snapshot, seed uint64, count int) ([]int, []keyspace.Key) {
	r := xrand.New(seed)
	srcs := make([]int, count)
	targets := make([]keyspace.Key, count)
	for i := range srcs {
		srcs[i] = r.Intn(s.N())
		targets[i] = keyspace.Key(r.Float64())
	}
	return srcs, targets
}

// A nil transport is a perfect network: robust routing must agree with
// the plain SnapshotRouter hop for hop, at zero latency.
func TestRobustRouterPerfectNetwork(t *testing.T) {
	s := robustSnapshot(t, 256)
	rr, err := NewRobustRouter(s, nil, RobustPolicy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := s.NewRouter()
	srcs, targets := robustPairs(s, 2, 500)
	for i := range srcs {
		got := rr.RouteRobust(srcs[i], targets[i])
		want := plain.Route(srcs[i], targets[i])
		if got.Outcome != Delivered {
			t.Fatalf("query %d: outcome %v on a perfect network", i, got.Outcome)
		}
		if got.Hops != want.Hops || got.Dest != want.Dest {
			t.Fatalf("query %d: (hops %d, dest %d) vs plain (hops %d, dest %d)",
				i, got.Hops, got.Dest, want.Hops, want.Dest)
		}
		if got.Latency != 0 || got.Retries != 0 {
			t.Fatalf("query %d: latency %v retries %d on a perfect network", i, got.Latency, got.Retries)
		}
	}
}

// At 5% per-hop loss the default retry budget must carry ≥99% of
// queries through, at a latency price.
func TestRobustRouterLoss(t *testing.T) {
	s := robustSnapshot(t, 512)
	m, err := netmodel.New(netmodel.Config{Loss: 0.05}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRobustRouter(s, m, RobustPolicy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srcs, targets := robustPairs(s, 4, 2000)
	arrived, retries := 0, 0
	var latency float64
	for i := range srcs {
		res := rr.RouteRobust(srcs[i], targets[i])
		if res.Outcome.Arrived() {
			arrived++
		}
		retries += res.Retries
		latency += res.Latency
	}
	if rate := float64(arrived) / float64(len(srcs)); rate < 0.99 {
		t.Errorf("delivery rate %.4f at 5%% loss, want >= 0.99", rate)
	}
	if retries == 0 {
		t.Error("no retries recorded at 5% loss")
	}
	if latency <= 0 {
		t.Error("no latency accumulated")
	}
}

// 100% loss: every query needing at least one hop must time out —
// terminate, not spin.
func TestRobustRouterTotalLoss(t *testing.T) {
	s := robustSnapshot(t, 128)
	m, _ := netmodel.New(netmodel.Config{Loss: 1}, 9)
	rr, err := NewRobustRouter(s, m, RobustPolicy{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	srcs, targets := robustPairs(s, 6, 300)
	for i := range srcs {
		res := rr.RouteRobust(srcs[i], targets[i])
		switch res.Outcome {
		case TimedOut:
			if res.Hops != 0 {
				t.Fatalf("query %d: %d hops delivered under 100%% loss", i, res.Hops)
			}
			if res.Latency <= 0 {
				t.Fatalf("query %d: timed out at zero cost", i)
			}
		case Delivered:
			// Legal only when the source already was the responsible node.
			if res.Hops != 0 {
				t.Fatalf("query %d: delivered with %d hops under 100%% loss", i, res.Hops)
			}
		default:
			t.Fatalf("query %d: outcome %v under 100%% loss", i, res.Outcome)
		}
	}
}

// Retry budget 0 (Retries: -1): no resends ever, and a visibly worse
// delivery rate under heavy loss than the default budget.
func TestRobustRouterRetryBudgetZero(t *testing.T) {
	s := robustSnapshot(t, 256)
	run := func(retries int, seed uint64) (arrived, resends int) {
		m, _ := netmodel.New(netmodel.Config{Loss: 0.3}, 13)
		rr, err := NewRobustRouter(s, m, RobustPolicy{Retries: retries}, seed)
		if err != nil {
			t.Fatal(err)
		}
		srcs, targets := robustPairs(s, 8, 1500)
		for i := range srcs {
			res := rr.RouteRobust(srcs[i], targets[i])
			if res.Outcome.Arrived() {
				arrived++
			}
			resends += res.Retries
		}
		return
	}
	noRetryArrived, noRetryResends := run(-1, 21)
	defArrived, _ := run(0, 21)
	if noRetryResends != 0 {
		t.Errorf("retry budget 0 recorded %d resends", noRetryResends)
	}
	if noRetryArrived >= defArrived {
		t.Errorf("no-retry arrived %d >= default-budget arrived %d at 30%% loss",
			noRetryArrived, defArrived)
	}
}

// A query whose source and target sit in different partition
// components must come back Unroutable — and terminate.
func TestRobustRouterPartitionUnroutable(t *testing.T) {
	s := robustSnapshot(t, 256)
	m, _ := netmodel.New(netmodel.Config{}, 17)
	if err := m.SetPartition(netmodel.Partition{Cuts: []float64{0.25, 0.75}}); err != nil {
		t.Fatal(err)
	}
	rr, err := NewRobustRouter(s, m, RobustPolicy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cross, unroutable := 0, 0
	srcs, targets := robustPairs(s, 10, 1000)
	for i := range srcs {
		srcComp := m.Component(s.Key(srcs[i]))
		dstComp := m.Component(s.rank.KeyAt(s.rank.Nearest(s.topo, targets[i])))
		res := rr.RouteRobust(srcs[i], targets[i])
		if srcComp != dstComp {
			cross++
			if res.Outcome == Unroutable {
				unroutable++
			}
			if res.Outcome.Arrived() && res.Hops > 0 {
				// Arrivals are only legal when a same-component node is as
				// close to the target as the responsible one.
				continue
			}
		}
	}
	if cross == 0 {
		t.Fatal("no cross-partition pairs drawn")
	}
	if frac := float64(unroutable) / float64(cross); frac < 0.9 {
		t.Errorf("only %.2f of cross-partition queries unroutable", frac)
	}
}

// Same seeds ⇒ bit-identical robust results, draw for draw.
func TestRobustRouterDeterminism(t *testing.T) {
	run := func() []RobustResult {
		s := robustSnapshot(t, 128)
		m, _ := netmodel.New(netmodel.Config{Loss: 0.1, SlowFrac: 0.1, ByzantineFrac: 0.05}, 23)
		rr, err := NewRobustRouter(s, m, RobustPolicy{}, 31)
		if err != nil {
			t.Fatal(err)
		}
		srcs, targets := robustPairs(s, 12, 800)
		out := make([]RobustResult, len(srcs))
		for i := range srcs {
			out[i] = rr.RouteRobust(srcs[i], targets[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The published fault mask must mirror the plane's dead set, stamp the
// fault epoch, and make routers skip dead candidates — measurably
// cheaper than discovering the same deaths by timeout.
func TestPublisherFaultMask(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-uniform", Options{N: 256, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := netmodel.New(netmodel.Config{DeadFrac: 0.1}, 29)
	pub.SetFaultPlane(m)

	snap := pub.Snapshot()
	if snap.FaultEpoch() != m.FaultEpoch() {
		t.Errorf("snapshot fault epoch %d, plane %d", snap.FaultEpoch(), m.FaultEpoch())
	}
	deadN := 0
	for u := 0; u < snap.N(); u++ {
		want := m.Dead(snap.Key(u))
		if snap.Dead(u) != want {
			t.Fatalf("slot %d: mask %v, plane %v", u, snap.Dead(u), want)
		}
		if want {
			deadN++
		}
	}
	if snap.DeadCount() != deadN {
		t.Errorf("DeadCount %d, want %d", snap.DeadCount(), deadN)
	}
	if deadN == 0 {
		t.Fatal("no dead nodes drawn; test is vacuous")
	}

	// Masked vs maskless routing over the same faulty transport: the
	// mask must save timeouts (latency) without costing deliveries.
	maskless := NewSnapshot(dyn)
	withMask, err := NewRobustRouter(snap, m, RobustPolicy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewRobustRouter(maskless, m, RobustPolicy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srcs, targets := robustPairs(snap, 14, 600)
	var latMask, latNo float64
	arrMask, arrNo := 0, 0
	for i := range srcs {
		if snap.Dead(srcs[i]) {
			continue
		}
		a := withMask.RouteRobust(srcs[i], targets[i])
		b := without.RouteRobust(srcs[i], targets[i])
		latMask += a.Latency
		latNo += b.Latency
		if a.Outcome.Arrived() {
			arrMask++
		}
		if b.Outcome.Arrived() {
			arrNo++
		}
	}
	if latMask >= latNo {
		t.Errorf("masked latency %.3f not below maskless %.3f", latMask, latNo)
	}
	if arrMask < arrNo {
		t.Errorf("mask cost deliveries: %d vs %d", arrMask, arrNo)
	}
}

// Partition-aware serving: with a vantage set, the published mask
// covers the far component; after healing and republishing it serves
// everyone again.
func TestPublisherPartitionVantage(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-uniform", Options{N: 128, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := netmodel.New(netmodel.Config{}, 37)
	pub.SetFaultPlane(m)
	pub.SetVantage(0.1) // component 0 under the cut below

	if err := m.SetPartition(netmodel.Partition{Cuts: []float64{0.25, 0.75}}); err != nil {
		t.Fatal(err)
	}
	snap := pub.Publish()
	farMasked, nearMasked := 0, 0
	far := 0
	for u := 0; u < snap.N(); u++ {
		if m.Component(snap.Key(u)) != 0 {
			far++
			if snap.Dead(u) {
				farMasked++
			}
		} else if snap.Dead(u) {
			nearMasked++
		}
	}
	if far == 0 {
		t.Fatal("no far-component nodes; test is vacuous")
	}
	if farMasked != far {
		t.Errorf("far component: %d/%d masked, want all", farMasked, far)
	}
	if nearMasked != 0 {
		t.Errorf("%d own-component nodes masked", nearMasked)
	}

	m.Heal()
	snap = pub.Publish()
	if snap.DeadCount() != 0 {
		t.Errorf("%d nodes still masked after heal+publish", snap.DeadCount())
	}
}

// The fault-injected serve path under -race: readers route against
// published snapshots (mask included) while one writer churns and
// another cuts/heals partitions. No Transport is shared — the mask is
// the only fault state readers touch.
func TestServeFaultInjectedRace(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-uniform", Options{N: 256, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn, PublishEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := netmodel.New(netmodel.Config{DeadFrac: 0.1}, 41)
	pub.SetFaultPlane(m)
	pub.SetVantage(0.5)

	const queriesPerReader = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			snap := pub.Snapshot()
			router := snap.NewRouter().(*SnapshotRouter)
			for i := 0; i < queriesPerReader; i++ {
				if i%64 == 0 {
					snap = pub.Snapshot()
					router.Rebind(snap)
				}
				src := r.Intn(snap.N())
				router.Route(src, keyspace.Key(r.Float64()))
			}
		}(uint64(100 + w))
	}

	wg.Add(1)
	go func() { // churn writer
		defer wg.Done()
		r := xrand.New(51)
		for i := 0; i < 400; i++ {
			if r.Bool(0.5) && pub.LiveN() > 64 {
				_ = pub.Leave(ctx, r.Intn(pub.LiveN()))
			} else {
				_ = pub.Join(ctx)
			}
		}
		close(stop)
	}()

	wg.Add(1)
	go func() { // partition cut/heal toggler
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				m.Heal()
				pub.Publish()
				return
			default:
			}
			if i%2 == 0 {
				_ = m.SetPartition(netmodel.Partition{Cuts: []float64{0.3, 0.6}})
			} else {
				m.Heal()
			}
			pub.Publish()
		}
	}()

	wg.Wait()
}
