package overlaynet

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BuildFunc constructs one topology from validated options.
type BuildFunc func(ctx context.Context, opts Options) (Overlay, error)

// Info describes one registered topology.
type Info struct {
	// Name is the registry key (lower-case, stable across releases).
	Name string
	// Description is a one-line human summary, printed by the -list
	// flags of cmd/swsim and cmd/swbench.
	Description string
	// Build constructs the topology.
	Build BuildFunc
}

var registry = struct {
	sync.RWMutex
	m map[string]Info
}{m: make(map[string]Info)}

// Register adds a topology to the process-global registry. It panics on
// an empty name, nil builder, or duplicate registration — registration
// happens in package init, where a panic is a programming error caught
// by the first test run.
func Register(info Info) {
	if info.Name == "" || info.Build == nil {
		panic("overlaynet: Register needs a name and a build function")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[info.Name]; dup {
		panic(fmt.Sprintf("overlaynet: topology %q registered twice", info.Name))
	}
	registry.m[info.Name] = info
}

// Lookup returns the registration for name — see Names for the full
// set.
func Lookup(name string) (Info, bool) {
	registry.RLock()
	defer registry.RUnlock()
	info, ok := registry.m[name]
	return info, ok
}

// Names returns the registered topology names in sorted order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build constructs the named topology. The same (name, opts) pair always
// produces an identical overlay; ctx cancels long-running constructions.
func Build(ctx context.Context, name string, opts Options) (Overlay, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("overlaynet: unknown topology %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return info.Build(ctx, opts)
}
