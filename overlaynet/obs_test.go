package overlaynet_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/obs"
	"smallworld/overlaynet"
	"smallworld/xrand"
)

// TestOutcomeLabelOrder pins the contract between overlaynet.Outcome and
// the obs exposition: RouteOutcomes[i] must surface under the label
// Outcome(i).String(). obs cannot import this package to check it
// itself, so the pin lives here; if either enum order or the label table
// changes without the other, a counter would report under a wrong name.
func TestOutcomeLabelOrder(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.NextHint()
	for i := range reg.RouteOutcomes {
		reg.RouteOutcomes[i].Add(h, uint64(i)+1)
	}
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i := range reg.RouteOutcomes {
		want := fmt.Sprintf("smallworld_route_outcomes_total{outcome=%q} %d",
			overlaynet.Outcome(i).String(), i+1)
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q — outcome %d is mislabelled", want, i)
		}
	}
}

// buildObsOverlay constructs the deterministic overlay every test here
// routes over. Building twice with the same seed yields identical link
// tables, which is what the bit-identical comparisons rely on.
func buildObsOverlay(t *testing.T, n int) overlaynet.Dynamic {
	t.Helper()
	dyn, err := overlaynet.NewIncremental(context.Background(), "smallworld-skewed", overlaynet.Options{
		N: n, Seed: 9, Dist: dist.NewPower(0.7), Topology: keyspace.Ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dyn
}

// TestSnapshotObsCounters routes a fixed workload through an
// instrumented published snapshot and checks three things: the counters
// equal the totals recomputed from the returned results, instrumentation
// did not change a single routing decision (bit-identical results vs an
// uninstrumented twin), and per-link traffic sums to the hop total.
func TestSnapshotObsCounters(t *testing.T) {
	const n, queries = 256, 400

	reg := obs.NewRegistry()
	reg.TrackLinks = true
	tracer := obs.NewTracer(obs.TracerConfig{Sample: 8})
	pub, err := overlaynet.NewPublisher(buildObsOverlay(t, n))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetObs(reg, tracer)
	snap := pub.Snapshot()
	router := snap.NewRouter().(*overlaynet.SnapshotRouter)

	// The uninstrumented twin: same overlay, ad-hoc snapshot (which by
	// construction carries no hooks), same query stream.
	plain := overlaynet.NewSnapshot(buildObsOverlay(t, n)).NewRouter()

	var hops, arrived, failed uint64
	rng, rng2 := xrand.New(21), xrand.New(21)
	for i := 0; i < queries; i++ {
		src := rng.Intn(n)
		target := keyspace.Key(rng.Float64())
		res := router.Route(src, target)
		if want := plain.Route(rng2.Intn(n), keyspace.Key(rng2.Float64())); res != want {
			t.Fatalf("query %d: instrumented result %+v != uninstrumented %+v", i, res, want)
		}
		hops += uint64(res.Hops)
		if res.Arrived {
			arrived++
		} else {
			failed++
		}
	}

	if got := reg.RouteQueries.Value(); got != queries {
		t.Errorf("RouteQueries = %d, want %d", got, queries)
	}
	if got := reg.RouteHops.Value(); got != hops {
		t.Errorf("RouteHops = %d, want %d", got, hops)
	}
	if got := reg.RouteFailures.Value(); got != failed {
		t.Errorf("RouteFailures = %d, want %d", got, failed)
	}
	if got := reg.HopsPerQuery.Count(); got != arrived {
		t.Errorf("HopsPerQuery count = %d, want %d arrived", got, arrived)
	}
	if got := reg.SnapNodes.Value(); got != n {
		t.Errorf("SnapNodes = %d, want %d", got, n)
	}

	// Every routed hop crossed exactly one CSR edge of this snapshot.
	var linkSum uint64
	for _, c := range snap.LinkTraffic() {
		linkSum += c
	}
	if linkSum != hops {
		t.Errorf("LinkTraffic sums to %d, want %d (one increment per hop)", linkSum, hops)
	}

	// 1-in-8 sampling over 400 queries must have retained traces, and a
	// sampled trace of the greedy walk carries its hop spans.
	traces := tracer.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained at Sample=8")
	}
	for _, tr := range traces {
		if tr.Op != "route" || len(tr.Spans) != int(tr.End) {
			t.Errorf("trace %d: op=%q spans=%d end=%g, want one span per hop",
				tr.ID, tr.Op, len(tr.Spans), tr.End)
		}
	}
}

// TestAdHocSnapshotUninstrumented pins that instrumentation is carried
// by published snapshots only: a NewSnapshot capture taken from the same
// overlay after SetObs must not touch the registry.
func TestAdHocSnapshotUninstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	dyn := buildObsOverlay(t, 128)
	pub, err := overlaynet.NewPublisher(dyn)
	if err != nil {
		t.Fatal(err)
	}
	pub.SetObs(reg, nil)
	before := reg.RouteQueries.Value()

	adhoc := overlaynet.NewSnapshot(dyn).NewRouter()
	rng := xrand.New(5)
	for i := 0; i < 50; i++ {
		adhoc.Route(rng.Intn(128), keyspace.Key(rng.Float64()))
	}
	if got := reg.RouteQueries.Value(); got != before {
		t.Errorf("ad-hoc snapshot routed into the registry: %d -> %d", before, got)
	}
}

// TestRobustRouterObsCounters checks the robust path's counters against
// totals recomputed from its typed results, including the per-outcome
// series and the virtual-latency histogram.
func TestRobustRouterObsCounters(t *testing.T) {
	const n, queries = 256, 300
	snap := overlaynet.NewSnapshot(buildObsOverlay(t, n))
	rr, err := overlaynet.NewRobustRouter(snap, nil, overlaynet.RobustPolicy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rr.SetObs(reg, nil)

	var hops, retries, arrived uint64
	var outcomes [4]uint64
	rng := xrand.New(11)
	for i := 0; i < queries; i++ {
		res := rr.RouteRobust(rng.Intn(n), keyspace.Key(rng.Float64()))
		hops += uint64(res.Hops)
		retries += uint64(res.Retries)
		outcomes[int(res.Outcome)]++
		if res.Outcome.Arrived() {
			arrived++
		}
	}

	if got := reg.RouteQueries.Value(); got != queries {
		t.Errorf("RouteQueries = %d, want %d", got, queries)
	}
	if got := reg.RouteHops.Value(); got != hops {
		t.Errorf("RouteHops = %d, want %d", got, hops)
	}
	if got := reg.RouteRetries.Value(); got != retries {
		t.Errorf("RouteRetries = %d, want %d", got, retries)
	}
	for i, want := range outcomes {
		if got := reg.RouteOutcomes[i].Value(); got != want {
			t.Errorf("RouteOutcomes[%s] = %d, want %d", overlaynet.Outcome(i), got, want)
		}
	}
	if got := reg.HopsPerQuery.Count(); got != arrived {
		t.Errorf("HopsPerQuery count = %d, want %d", got, arrived)
	}
	if got := reg.VirtLatency.Count(); got != queries {
		t.Errorf("VirtLatency count = %d, want %d", got, queries)
	}
}

// TestServeObsRace is the instrumented-serving race gate: concurrent
// workers route against published snapshots — counting queries, hops and
// per-link traffic, sampling traces — while the writer churns and
// republishes. Run under -race (CI does), it guards every atomic in the
// obs hot path; in any mode it checks no query went uncounted.
func TestServeObsRace(t *testing.T) {
	const (
		n       = 128
		workers = 4
		perW    = 500
	)
	ctx := context.Background()
	reg := obs.NewRegistry()
	reg.TrackLinks = true
	tracer := obs.NewTracer(obs.TracerConfig{Sample: 32})
	pub, err := overlaynet.NewPublisher(buildObsOverlay(t, n), overlaynet.PublishEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	pub.SetObs(reg, tracer)

	var churnWG sync.WaitGroup
	stop := make(chan struct{})
	churnWG.Add(1)
	go func() { // churn: joins and leaves, republishing every 4 events
		defer churnWG.Done()
		rng := xrand.New(3)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if rng.Bool(0.5) {
				err = pub.Join(ctx)
			} else if live := pub.LiveN(); live > 8 {
				err = pub.Leave(ctx, rng.Intn(live))
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(seed uint64) {
			defer workerWG.Done()
			rng := xrand.New(seed)
			router := pub.Snapshot().NewRouter().(*overlaynet.SnapshotRouter)
			for i := 0; i < perW; i++ {
				if i%64 == 0 {
					router.Rebind(pub.Snapshot())
				}
				src := rng.Intn(router.Pinned().N())
				router.Route(src, keyspace.Key(rng.Float64()))
			}
		}(uint64(w) + 17)
	}

	workerWG.Wait()
	close(stop)
	churnWG.Wait()

	if got := reg.RouteQueries.Value(); got != workers*perW {
		t.Errorf("RouteQueries = %d, want %d (every query counted exactly once)", got, workers*perW)
	}
}
