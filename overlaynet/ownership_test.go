package overlaynet

import (
	"context"
	"math"
	"testing"

	"smallworld/dist"
	"smallworld/keyspace"
)

// TestOwnedRangeTilesKeySpace pins the ownership properties the store
// depends on, under skewed identifier populations and non-power-of-two
// N on both topologies: every slot's owned range is well defined, the
// ranges are pairwise disjoint, their lengths sum to the full key
// space, and any key lies in exactly one slot's range.
func TestOwnedRangeTilesKeySpace(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		topo keyspace.Topology
	}{
		{"ring", keyspace.Ring},
		{"line", keyspace.Line},
	} {
		for _, n := range []int{3, 37, 100, 257} {
			dyn, err := NewIncremental(ctx, "smallworld-skewed",
				Options{N: n, Seed: uint64(n) * 13, Dist: dist.NewPower(0.7), Topology: tc.topo})
			if err != nil {
				t.Fatal(err)
			}
			s := NewSnapshot(dyn)
			sum := 0.0
			for u := 0; u < s.N(); u++ {
				sum += OwnedRange(s, u).Length()
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s n=%d: owned ranges sum to %v, want 1", tc.name, n, sum)
			}
			// Probe a grid plus every identifier and range boundary — the
			// half-open edge cases where double- or zero-ownership would hide.
			probes := make([]keyspace.Key, 0, 3*n+128)
			for i := 0; i < 128; i++ {
				probes = append(probes, keyspace.Key(float64(i)/128))
			}
			for u := 0; u < s.N(); u++ {
				r := OwnedRange(s, u)
				probes = append(probes, s.Key(u), r.Lo)
			}
			for _, k := range probes {
				owners := 0
				for u := 0; u < s.N(); u++ {
					if OwnedRange(s, u).Contains(k) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("%s n=%d: key %v lies in %d owned ranges, want exactly 1", tc.name, n, k, owners)
				}
			}
			// Each slot's range contains its own identifier (cells are
			// centred on their points) unless degenerate spacing collapsed
			// it to zero width.
			for u := 0; u < s.N(); u++ {
				r := OwnedRange(s, u)
				if !r.Empty() && !r.Contains(s.Key(u)) {
					// The upper-owns convention can push a key one cell up
					// only when the midpoint rounds onto the key itself.
					if r.Hi != s.Key(u) {
						t.Fatalf("%s n=%d: slot %d key %v outside its range %v", tc.name, n, u, s.Key(u), r)
					}
				}
			}
		}
	}
}

// TestOwnedRangeMatchesNetworkCell verifies the snapshot-side ownership
// agrees with keyspace.Owner over the snapshot's sorted population —
// one definition of "who owns what" across layers.
func TestOwnedRangeMatchesNetworkCell(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-skewed",
		Options{N: 101, Seed: 5, Dist: dist.NewPower(0.8), Topology: keyspace.Ring})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshot(dyn)
	for i := 0; i < 500; i++ {
		k := keyspace.Key(float64(i) / 500)
		rank := keyspace.Owner(s.Topology(), s.SortedKeys(), k)
		var owner int = -1
		for u := 0; u < s.N(); u++ {
			if OwnedRange(s, u).Contains(k) {
				owner = u
				break
			}
		}
		if owner < 0 || s.Key(owner) != s.SortedKeys()[rank] {
			t.Fatalf("key %v: OwnedRange owner %d (key %v) disagrees with keyspace.Owner rank %d (key %v)",
				k, owner, s.Key(owner), rank, s.SortedKeys()[rank])
		}
	}
}

// TestOwnershipChangeNarratesChurn drives churn with a watcher
// installed and checks, probe by probe, that the emitted changes are
// exactly the ownership delta of each membership event: a model map
// (probe key → owner identifier) updated only from OwnershipChange
// events stays identical to the ownership recomputed from scratch after
// every single event, on both topologies.
func TestOwnershipChangeNarratesChurn(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		topo keyspace.Topology
	}{
		{"ring", keyspace.Ring},
		{"line", keyspace.Line},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dyn, err := NewIncremental(ctx, "smallworld-skewed",
				Options{N: 24, Seed: 42, Dist: dist.NewPower(0.7), Topology: tc.topo})
			if err != nil {
				t.Fatal(err)
			}
			o := dyn.(*incrementalOverlay)
			var events []OwnershipChange
			o.SetOwnershipWatcher(func(ch OwnershipChange) { events = append(events, ch) })
			// Prime-count probe grid: lands on a cell boundary only if a
			// midpoint happens to hit i/257 exactly, which the skewed draw
			// does not produce.
			probes := make([]keyspace.Key, 0, 257)
			for i := 0; i < 257; i++ {
				probes = append(probes, keyspace.Key(float64(i)/257))
			}
			owner := func(k keyspace.Key) keyspace.Key {
				return o.byKey[keyspace.Owner(o.topo, o.byKey, k)]
			}
			model := make(map[keyspace.Key]keyspace.Key, len(probes))
			for _, k := range probes {
				model[k] = owner(k)
			}
			for i := 0; i < 200; i++ {
				events = events[:0]
				if i%2 == 0 || o.N() <= 3 {
					if err := o.Join(ctx); err != nil {
						t.Fatal(err)
					}
				} else if err := o.Leave(ctx, (i*31)%o.N()); err != nil {
					t.Fatal(err)
				}
				if len(events) == 0 {
					t.Fatalf("event %d: no ownership changes emitted", i)
				}
				for _, ch := range events {
					if ch.Range.Empty() {
						t.Fatalf("event %d: empty range emitted: %+v", i, ch)
					}
					for _, k := range probes {
						if !ch.Range.Contains(k) {
							continue
						}
						if ch.Joined {
							if model[k] != ch.Peer {
								t.Fatalf("event %d: join says probe %v comes from %v, model owner is %v", i, k, ch.Peer, model[k])
							}
							model[k] = ch.Node
						} else {
							if model[k] != ch.Node {
								t.Fatalf("event %d: leave says probe %v belonged to %v, model owner is %v", i, k, ch.Node, model[k])
							}
							model[k] = ch.Peer
						}
					}
				}
				for _, k := range probes {
					if got := owner(k); got != model[k] {
						t.Fatalf("%s event %d: probe %v owned by %v, event-driven model says %v", tc.name, i, k, got, model[k])
					}
				}
			}
		})
	}
}

// TestPublisherForwardsOwnershipWatcher pins the Publisher pass-through:
// a watcher installed on the Publisher sees the wrapped incremental
// overlay's events.
func TestPublisherForwardsOwnershipWatcher(t *testing.T) {
	ctx := context.Background()
	dyn, err := NewIncremental(ctx, "smallworld-skewed",
		Options{N: 16, Seed: 3, Dist: dist.NewPower(0.7), Topology: keyspace.Ring})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(dyn, PublishEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	var got []OwnershipChange
	pub.SetOwnershipWatcher(func(ch OwnershipChange) { got = append(got, ch) })
	if err := pub.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no ownership change forwarded through the Publisher")
	}
	for _, ch := range got {
		if !ch.Joined {
			t.Fatalf("join emitted a leave-flavoured change: %+v", ch)
		}
	}
	n := pub.LiveN()
	got = got[:0]
	if err := pub.Leave(ctx, n-1); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no leave change forwarded through the Publisher")
	}
}
