package overlaynet

import (
	"context"
	"math"
	"sort"
	"testing"

	"smallworld/dist"
	"smallworld/keyspace"
)

// checkIncrementalInvariants verifies the full internal consistency of
// an incremental overlay: the rank index is a sorted permutation of the
// live identifiers, neighbour pointers follow key order, in-lists
// mirror the long links exactly, and — most importantly — the adjacency
// every router reads (base CSR + delta rows) equals the adjacency
// recomputed from scratch. The last check is what catches a stale base
// row surviving a slot rename.
func checkIncrementalInvariants(t *testing.T, o *incrementalOverlay) {
	t.Helper()
	n := len(o.keys)
	if len(o.byKey) != n || len(o.order) != n || len(o.long) != n || len(o.in) != n {
		t.Fatalf("inconsistent state sizes at n=%d", n)
	}
	seen := make(map[int32]bool, n)
	for rank, id := range o.order {
		if seen[id] {
			t.Fatalf("slot %d appears twice in the rank index", id)
		}
		seen[id] = true
		if o.keys[id] != o.byKey[rank] {
			t.Fatalf("rank %d: order/byKey disagree: key %v vs %v", rank, o.keys[id], o.byKey[rank])
		}
		if rank > 0 && o.byKey[rank] <= o.byKey[rank-1] {
			t.Fatalf("rank index not strictly ascending at %d", rank)
		}
	}
	for rank, id := range o.order {
		wantPred, wantSucc := int32(-1), int32(-1)
		if o.topo == keyspace.Ring && n > 1 {
			wantPred = o.order[(rank-1+n)%n]
			wantSucc = o.order[(rank+1)%n]
		} else {
			if rank > 0 {
				wantPred = o.order[rank-1]
			}
			if rank+1 < n {
				wantSucc = o.order[rank+1]
			}
		}
		if o.pred[id] != wantPred || o.succ[id] != wantSucc {
			t.Fatalf("slot %d (rank %d): pred/succ = %d/%d, want %d/%d",
				id, rank, o.pred[id], o.succ[id], wantPred, wantSucc)
		}
	}
	// in-lists mirror long links.
	inCount := make(map[[2]int32]int)
	for u, links := range o.long {
		for _, v := range links {
			if int(v) == u || v < 0 || int(v) >= n {
				t.Fatalf("slot %d holds invalid link %d at n=%d", u, v, n)
			}
			inCount[[2]int32{v, int32(u)}]++
		}
	}
	for v, ins := range o.in {
		for _, u := range ins {
			key := [2]int32{int32(v), u}
			inCount[key]--
			if inCount[key] < 0 {
				t.Fatalf("in-list of %d mentions %d more often than %d links to it", v, u, u)
			}
		}
	}
	for key, c := range inCount {
		if c != 0 {
			t.Fatalf("link %d->%d missing from the in-list (count %d)", key[1], key[0], c)
		}
	}
	// The routed adjacency equals the adjacency recomputed from state.
	for u := 0; u < n; u++ {
		var want []int32
		if o.pred[u] >= 0 {
			want = append(want, o.pred[u])
		}
		if o.succ[u] >= 0 {
			want = append(want, o.succ[u])
		}
		want = append(want, o.long[u]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		dedup := want[:0]
		for i, v := range want {
			if i == 0 || v != dedup[len(dedup)-1] {
				dedup = append(dedup, v)
			}
		}
		got := o.Neighbors(u)
		if len(got) != len(dedup) {
			t.Fatalf("slot %d row %v, want %v", u, got, dedup)
		}
		for i := range got {
			if got[i] != dedup[i] {
				t.Fatalf("slot %d row %v, want %v", u, got, dedup)
			}
		}
	}
}

func TestIncrementalInvariantsUnderChurn(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		oname string
		opts  Options
	}{
		{"skewed-ring", "smallworld-skewed", Options{N: 96, Seed: 7, Dist: dist.NewPower(0.7), Topology: keyspace.Ring}},
		{"uniform-line", "smallworld-uniform", Options{N: 96, Seed: 8}},
		{"kleinberg", "kleinberg", Options{N: 96, Seed: 9, Topology: keyspace.Ring}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dyn, err := NewIncremental(ctx, tc.oname, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			o := dyn.(*incrementalOverlay)
			o.compact = 5 // exercise compaction boundaries often
			checkIncrementalInvariants(t, o)
			// A deterministic mixed churn schedule crossing several
			// compactions, including leaves of the freshest slot and of
			// slot 0 (rename edge cases).
			for i := 0; i < 150; i++ {
				switch {
				case i%3 == 0:
					if err := o.Join(ctx); err != nil {
						t.Fatal(err)
					}
				case i%7 == 0:
					if err := o.Leave(ctx, 0); err != nil {
						t.Fatal(err)
					}
				case i%5 == 0:
					if err := o.Leave(ctx, o.N()-1); err != nil {
						t.Fatal(err)
					}
				default:
					if err := o.Leave(ctx, (i*37)%o.N()); err != nil {
						t.Fatal(err)
					}
				}
				checkIncrementalInvariants(t, o)
			}
			// Routing still works and terminates at the nearest peer.
			router := o.NewRouter()
			arrived := 0
			for q := 0; q < 200; q++ {
				target := keyspace.Key(float64(q) / 200)
				res := router.Route(q%o.N(), target)
				if res.Arrived {
					arrived++
				}
			}
			if frac := float64(arrived) / 200; frac < 0.99 {
				t.Fatalf("only %.0f%% of queries arrived after churn", 100*frac)
			}
		})
	}
}

// TestIncrementalOpsRatio pins the tentpole claim at unit-test scale:
// a membership event costs ≥50× fewer build-equivalent operations
// (placed links) than NewRebuild's full reconstruction at the same
// population.
func TestIncrementalOpsRatio(t *testing.T) {
	ctx := context.Background()
	n := 4096
	dyn, err := NewIncremental(ctx, "smallworld-skewed",
		Options{N: n, Seed: 11, Dist: dist.NewPower(0.7), Topology: keyspace.Ring})
	if err != nil {
		t.Fatal(err)
	}
	o := dyn.(*incrementalOverlay)
	const events = 64
	for i := 0; i < events; i++ {
		if i%2 == 0 {
			err = o.Join(ctx)
		} else {
			err = o.Leave(ctx, (i*131)%o.N())
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	draws, placed, repairs := o.Ops()
	k := math.Ceil(math.Log2(float64(n)))
	rebuildPlaced := float64(events) * float64(n) * k // what NewRebuild samples per trajectory
	ratio := rebuildPlaced / float64(placed)
	t.Logf("incremental: %d draws, %d placed (%d repairs) over %d events; rebuild would place %.0f — %.0fx fewer",
		draws, placed, repairs, events, rebuildPlaced, ratio)
	if ratio < 50 {
		t.Fatalf("only %.1fx fewer placed links than rebuild, want >= 50x", ratio)
	}
	// Draw attempts (including rejections) must stay O(k) per event too.
	if perEvent := float64(draws) / events; perEvent > 8*k {
		t.Fatalf("%.1f draw attempts per event, want O(log N) (= %.0f)", perEvent, k)
	}
}
