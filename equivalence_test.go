package smallworld

import (
	"testing"
	"testing/quick"

	"smallworld/dist"
	"smallworld/keyspace"
	"smallworld/xrand"
)

// These tests execute the construction at the heart of Theorem 2's proof
// (Figures 1-2 of the paper): building graph G directly in the skewed
// space R with the mass criterion must be equivalent to building G' in
// the normalised space R' with the geometric criterion, because
// |∫_u^v f| = |F(v) - F(u)| = d'(u', v').

// buildPair constructs G (skewed space, mass measure) and G' (normalised
// space, geometric measure) from the same underlying uniform positions
// and the same seed.
func buildPair(t *testing.T, d dist.Distribution, n int, seed uint64, sampler SamplerKind) (*Network, *Network) {
	t.Helper()
	rng := xrand.New(seed)
	normKeys := make([]keyspace.Key, n)   // positions in R'
	skewedKeys := make([]keyspace.Key, n) // their images in R
	for i := range normKeys {
		p := rng.Float64()
		normKeys[i] = keyspace.Clamp(p)
		skewedKeys[i] = keyspace.Clamp(d.Quantile(p))
	}
	gCfg := Config{
		N: n, Dist: d, Keys: skewedKeys, Measure: Mass,
		Sampler: sampler, Seed: seed + 1, Topology: keyspace.Ring,
	}
	gPrimeCfg := Config{
		N: n, Dist: dist.Uniform{}, Keys: normKeys, Measure: Geometric,
		Sampler: sampler, Seed: seed + 1, Topology: keyspace.Ring,
	}
	return mustBuild(t, gCfg), mustBuild(t, gPrimeCfg)
}

func TestNormalizationEquivalenceExact(t *testing.T) {
	// With the exact sampler the two constructions see identical discrete
	// weight vectors, so with a shared seed the graphs must be identical.
	for _, d := range []dist.Distribution{
		dist.NewPower(0.7),
		dist.NewTruncExp(6),
		dist.NewTruncNormal(0.3, 0.15),
	} {
		g, gPrime := buildPair(t, d, 128, 41, Exact)
		if g.Graph().M() != gPrime.Graph().M() {
			t.Fatalf("%s: edge counts differ: %d vs %d", d.Name(), g.Graph().M(), gPrime.Graph().M())
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Graph().Out(u) {
				if !gPrime.Graph().HasEdge(u, int(v)) {
					t.Fatalf("%s: edge %d->%d in G but not in G'", d.Name(), u, v)
				}
			}
		}
	}
}

func TestNormalizationEquivalenceProtocol(t *testing.T) {
	// The protocol sampler resolves sampled values to the nearest peer,
	// and "nearest" can flip between flanking peers across the warp of
	// the space; once one draw flips, the node's remaining draws consume
	// different randomness and diverge freely. So we assert strong but
	// not perfect agreement, plus routing-cost parity (the property that
	// actually matters for Theorem 2).
	d := dist.NewPower(0.7)
	g, gPrime := buildPair(t, d, 256, 43, Protocol)
	var total, agree int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.LongRange(u) {
			total++
			if gPrime.Graph().HasEdge(u, int(v)) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no long-range links built")
	}
	if frac := float64(agree) / float64(total); frac < 0.75 {
		t.Errorf("only %.1f%% of protocol-sampled links agree across spaces", frac*100)
	}
	sG := routeSample(g, xrand.New(44), 1000)
	sGP := routeSample(gPrime, xrand.New(44), 1000)
	if ratio := sG.Mean() / sGP.Mean(); ratio > 1.2 || ratio < 0.8 {
		t.Errorf("protocol-built routing cost differs across spaces: %.2f vs %.2f", sG.Mean(), sGP.Mean())
	}
}

func TestEquivalentRoutingCost(t *testing.T) {
	// Corollary of the equivalence: greedy routing cost distributions in
	// G and G' match closely.
	d := dist.NewTruncExp(6)
	g, gPrime := buildPair(t, d, 512, 47, Exact)
	r1, r2 := xrand.New(48), xrand.New(48)
	sG := routeSample(g, r1, 1000)
	sGP := routeSample(gPrime, r2, 1000)
	if ratio := sG.Mean() / sGP.Mean(); ratio > 1.15 || ratio < 0.85 {
		t.Errorf("routing cost differs across spaces: %.2f vs %.2f", sG.Mean(), sGP.Mean())
	}
}

// Property over random densities: mass eligibility in R equals geometric
// eligibility in R' for every pair, i.e. the eligible link sets coincide.
func TestEligibilityInvariantQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		alpha := 0.9 * rng.Float64()
		d := dist.NewPower(alpha)
		n := 16 + rng.Intn(48)
		g, gPrime := buildPair(t, d, n, seed, Exact)
		minM := 1 / float64(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				el1 := g.measureBetween(u, v) >= minM
				el2 := gPrime.measureBetween(u, v) >= minM
				if el1 != el2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
